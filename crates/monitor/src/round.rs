//! Campaign execution: weekly rounds over a worker pool.
//!
//! Mirrors the tool's structure from Fig 2: each round refreshes the
//! ranked list (new sites join the monitored set permanently), randomizes
//! the site order, and fans the sites out to a pool of worker threads over
//! a bounded crossbeam channel (capacity = worker count, so a slow round
//! never buffers the whole site list). The worker count is validated
//! against [`CampaignConfig::max_workers`] up front — an out-of-range
//! configuration is a typed [`ConfigError`], not a panic or a silent
//! clamp. Every probe derives its randomness from `(seed, vantage, week,
//! site)`, so results are independent of thread scheduling — the parallel
//! run and a serial run produce the same database.
//!
//! The campaign degrades rather than dies: a worker or channel failure
//! mid-round loses only the in-flight probes (recorded as a
//! [`RoundError`], the round's partial results kept), an injected vantage
//! outage skips whole rounds (recorded in
//! [`MonitorDb::outage_weeks`]), and with a checkpoint directory the
//! database is snapshotted after every round so
//! [`run_campaign_resumable`] can pick up where a crashed or
//! powered-down vantage point left off.

use crate::db::MonitorDb;
use crate::probe::{probe_site, ProbeContext, ProbeOutcome};
use crate::vantage::VantagePoint;
use ipv6web_alexa::{MonitoredSet, TopList};
use ipv6web_dns::Resolver;
use ipv6web_stats::derive_rng;
use ipv6web_web::SiteId;
use rand::seq::SliceRandom;
use serde::{Deserialize, Serialize};
use std::path::{Path, PathBuf};

/// Campaign execution parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CampaignConfig {
    /// Campaign length, weeks (one round per week, as the paper's
    /// "approximately bi-weekly to weekly" cadence).
    pub total_weeks: u32,
    /// Worker threads. Must be in `1..=max_workers`; see [`Self::validate`].
    pub workers: usize,
    /// Hard cap on worker threads (the paper's tool ran "no more than 25"
    /// parallel monitoring threads).
    pub max_workers: usize,
    /// Number of World IPv6 Day rounds (paper: every 30 min for a day).
    pub ipv6_day_rounds: u32,
}

impl CampaignConfig {
    /// The paper's configuration.
    pub fn paper() -> Self {
        CampaignConfig { total_weeks: 52, workers: 25, max_workers: 25, ipv6_day_rounds: 48 }
    }

    /// A fast configuration for tests.
    pub fn test_small() -> Self {
        CampaignConfig { total_weeks: 20, workers: 4, max_workers: 25, ipv6_day_rounds: 4 }
    }

    /// Checks the worker settings. Replaces the old behavior of silently
    /// clamping any requested count into `1..=25`.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.max_workers == 0 {
            return Err(ConfigError::ZeroWorkerCap);
        }
        if self.workers == 0 {
            return Err(ConfigError::ZeroWorkers);
        }
        if self.workers > self.max_workers {
            return Err(ConfigError::WorkersExceedCap {
                workers: self.workers,
                max_workers: self.max_workers,
            });
        }
        Ok(())
    }
}

/// A campaign configuration the tool refuses to run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ConfigError {
    /// `workers == 0`: the pool would never probe anything.
    ZeroWorkers,
    /// `max_workers == 0`: the cap admits no pool at all.
    ZeroWorkerCap,
    /// The requested pool exceeds the tool's hard thread cap.
    WorkersExceedCap {
        /// Requested worker threads.
        workers: usize,
        /// The configured cap.
        max_workers: usize,
    },
    /// The checkpoint directory's parent does not exist — almost always a
    /// typo'd path. Creating the whole chain silently (what
    /// `create_dir_all` would do) hides the typo until gigabytes of
    /// checkpoints land in the wrong place, so it is rejected up front.
    CheckpointDirMissingParent {
        /// The requested checkpoint directory.
        path: PathBuf,
        /// The parent that would have to exist.
        parent: PathBuf,
    },
    /// The checkpoint path (or its parent) exists but is not a directory,
    /// so every atomic temp+rename checkpoint write would fail mid-run.
    CheckpointDirNotADirectory {
        /// The offending path.
        path: PathBuf,
    },
}

impl std::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ConfigError::ZeroWorkers => write!(f, "workers must be at least 1"),
            ConfigError::ZeroWorkerCap => write!(f, "max_workers must be at least 1"),
            ConfigError::WorkersExceedCap { workers, max_workers } => {
                write!(f, "workers ({workers}) exceeds max_workers ({max_workers})")
            }
            ConfigError::CheckpointDirMissingParent { path, parent } => write!(
                f,
                "checkpoint directory {} cannot be created: parent {} does not exist",
                path.display(),
                parent.display()
            ),
            ConfigError::CheckpointDirNotADirectory { path } => {
                write!(f, "checkpoint path {} is not a directory", path.display())
            }
        }
    }
}

impl std::error::Error for ConfigError {}

/// Validates a checkpoint (or job-store) directory **before** any
/// long-running work starts: the path must either already be a directory,
/// or be creatable as a single new directory under an existing parent.
///
/// `repro --checkpoint-dir` used to accept any string and only fail
/// minutes later, when the first atomic temp+rename checkpoint write hit
/// the bad path; callers now get a typed [`ConfigError`] immediately.
pub fn validate_checkpoint_dir(dir: &Path) -> Result<(), ConfigError> {
    if dir.exists() {
        if dir.is_dir() {
            return Ok(());
        }
        return Err(ConfigError::CheckpointDirNotADirectory { path: dir.to_path_buf() });
    }
    // Not existing yet is fine — but only one level deep: the parent must
    // already be there. A relative single-component path ("ckpt") has the
    // current directory as its implicit, existing parent.
    let parent = match dir.parent() {
        None => return Ok(()),
        Some(p) if p.as_os_str().is_empty() => return Ok(()),
        Some(p) => p,
    };
    if !parent.exists() {
        return Err(ConfigError::CheckpointDirMissingParent {
            path: dir.to_path_buf(),
            parent: parent.to_path_buf(),
        });
    }
    if !parent.is_dir() {
        return Err(ConfigError::CheckpointDirNotADirectory { path: parent.to_path_buf() });
    }
    Ok(())
}

/// Why a campaign could not run (or stopped).
#[derive(Debug)]
pub enum CampaignError {
    /// The configuration failed [`CampaignConfig::validate`].
    Config(ConfigError),
    /// A per-round checkpoint could not be written.
    Checkpoint {
        /// The snapshot path that failed.
        path: PathBuf,
        /// The underlying I/O error.
        source: std::io::Error,
    },
    /// The checkpoint directory was stamped by a study with a different
    /// vantage population; resuming would silently misattribute rounds.
    PopulationMismatch {
        /// The stamp file.
        path: PathBuf,
        /// Vantage count recorded in the stamp.
        stamped_count: usize,
        /// Population hash recorded in the stamp.
        stamped_hash: u64,
        /// Vantage count of the current study.
        count: usize,
        /// Population hash of the current study.
        hash: u64,
    },
}

impl std::fmt::Display for CampaignError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CampaignError::Config(e) => write!(f, "invalid campaign config: {e}"),
            CampaignError::Checkpoint { path, source } => {
                write!(f, "checkpoint {} failed: {source}", path.display())
            }
            CampaignError::PopulationMismatch {
                path,
                stamped_count,
                stamped_hash,
                count,
                hash,
            } => {
                write!(
                    f,
                    "checkpoint dir was written for a different vantage population \
                     ({} records {stamped_count} vantages, hash {stamped_hash:016x}; \
                     this study has {count} vantages, hash {hash:016x}) — resume with \
                     the matching scenario or use a fresh --checkpoint-dir",
                    path.display()
                )
            }
        }
    }
}

impl std::error::Error for CampaignError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CampaignError::Config(e) => Some(e),
            CampaignError::Checkpoint { source, .. } => Some(source),
            CampaignError::PopulationMismatch { .. } => None,
        }
    }
}

impl From<ConfigError> for CampaignError {
    fn from(e: ConfigError) -> Self {
        CampaignError::Config(e)
    }
}

/// A round that finished degraded: some in-flight probes were lost to a
/// worker or channel failure. The round's surviving results are kept.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RoundError {
    /// The campaign week of the degraded round.
    pub week: u32,
    /// Probes whose outcome never arrived.
    pub lost_probes: usize,
}

/// Applies one probe outcome to the database.
fn apply_outcome(
    db: &mut MonitorDb,
    site: SiteId,
    added_week: u32,
    week: u32,
    outcome: ProbeOutcome,
) {
    let rec = db.record_mut(site, added_week);
    match outcome {
        ProbeOutcome::NxDomain => {
            rec.has_a = false;
        }
        ProbeOutcome::V4Only => {
            rec.has_a = true;
            rec.has_aaaa = false;
        }
        ProbeOutcome::Unroutable(_) => {
            rec.has_a = true;
            rec.has_aaaa = true;
            rec.dual_since.get_or_insert(week);
        }
        ProbeOutcome::DifferentContent => {
            rec.has_a = true;
            rec.has_aaaa = true;
            rec.dual_since.get_or_insert(week);
            rec.content_identical = Some(false);
        }
        ProbeOutcome::Measured { v4, v6 } => {
            rec.has_a = true;
            rec.has_aaaa = true;
            rec.dual_since.get_or_insert(week);
            rec.content_identical = Some(true);
            rec.samples_v4.push(v4);
            rec.samples_v6.push(v6);
        }
        ProbeOutcome::Unconfident(_) => {
            rec.has_a = true;
            rec.has_aaaa = true;
            rec.dual_since.get_or_insert(week);
            rec.unconfident_rounds += 1;
        }
        ProbeOutcome::Malformed => {
            // DNS said dual-stack before the exchange tore; the performance
            // round is discarded (the sanitizer's job), reachability stands
            rec.has_a = true;
            rec.has_aaaa = true;
            rec.dual_since.get_or_insert(week);
            rec.malformed_rounds += 1;
        }
        ProbeOutcome::DnsFailure => {
            // nothing can be concluded about the site's records this round
            rec.faulted_rounds += 1;
        }
        ProbeOutcome::TimedOut(_) => {
            rec.has_a = true;
            rec.has_aaaa = true;
            rec.dual_since.get_or_insert(week);
            rec.faulted_rounds += 1;
        }
    }
}

/// Runs one round's sites through the worker pool, returning `(site,
/// outcome)` pairs sorted by site id so callers never observe completion
/// order, plus the number of probes whose outcome never arrived (zero
/// unless a worker died mid-round). `workers` must already be validated
/// ([`CampaignConfig::validate`]).
/// A v6-only monitor runs behind a DNS64 recursive; everything else keeps
/// the plain resolver (and its byte-identical answer stream).
fn resolver_for(ctx: &ProbeContext<'_>) -> Resolver {
    if ctx.stack.translates_v4() {
        Resolver::dns64()
    } else {
        Resolver::new()
    }
}

fn run_pool(
    ctx: &ProbeContext<'_>,
    sites: &[SiteId],
    week: u32,
    salt: u32,
    ipv6_day_mode: bool,
    workers: usize,
) -> (Vec<(SiteId, ProbeOutcome)>, usize) {
    // Two-level budget: the configured pool width is additionally clamped
    // to this thread's share of the global IPV6WEB_THREADS budget, so a
    // vantage-parallel study (campaign fan-out × per-round pool) never
    // oversubscribes the machine. On a share of 1 the round runs inline —
    // no channels, no spawns — which is also the fast path on small hosts.
    let workers = workers.min(sites.len().max(1)).min(ipv6web_par::allowance());
    ipv6web_obs::inc("monitor.rounds");
    ipv6web_obs::gauge_max("monitor.peak_workers", workers as u64);
    if workers == 1 {
        let mut resolver = resolver_for(ctx);
        let mut out: Vec<(SiteId, ProbeOutcome)> = sites
            .iter()
            .map(|&s| (s, probe_site(ctx, &mut resolver, s, week, salt, ipv6_day_mode)))
            .collect();
        out.sort_by_key(|(s, _)| s.0);
        return (out, 0);
    }

    // Both channels are bounded to the worker count: the feeder blocks once
    // every worker has a site in flight, and workers block once the drain
    // thread falls behind — memory stays O(workers), not O(sites).
    let (work_tx, work_rx) = crossbeam::channel::bounded::<SiteId>(workers);
    let (res_tx, res_rx) = crossbeam::channel::bounded::<(SiteId, ProbeOutcome)>(workers);
    let mut out = std::thread::scope(|scope| {
        scope.spawn(move || {
            for &s in sites {
                if work_tx.send(s).is_err() {
                    break; // all workers gone (only possible on panic)
                }
            }
        });
        for _ in 0..workers {
            let work_rx = work_rx.clone();
            let res_tx = res_tx.clone();
            scope.spawn(move || {
                // each worker keeps its own caching resolver, like each of
                // the paper's monitoring threads resolving independently
                let mut resolver = resolver_for(ctx);
                while let Ok(site) = work_rx.recv() {
                    let outcome = probe_site(ctx, &mut resolver, site, week, salt, ipv6_day_mode);
                    if res_tx.send((site, outcome)).is_err() {
                        // drain side gone — stop probing, keep what arrived
                        break;
                    }
                }
                // merge this worker's metric shard at pool join: totals are
                // then independent of scheduling and worker count
                ipv6web_obs::flush_thread();
            });
        }
        drop(res_tx);
        drop(work_rx);
        res_rx.iter().collect::<Vec<_>>()
    });
    out.sort_by_key(|(s, _)| s.0);
    let lost = sites.len().saturating_sub(out.len());
    (out, lost)
}

/// Appends a degraded round to the database and the metrics stream.
fn note_lost(db: &mut MonitorDb, week: u32, lost: usize) {
    if lost > 0 {
        ipv6web_obs::inc("monitor.degraded_rounds");
        ipv6web_obs::add("monitor.lost_probes", lost as u64);
        db.round_errors.push(RoundError { week, lost_probes: lost });
    }
}

/// Writes the per-round checkpoint, if a checkpoint directory was given.
/// The checkpoint file a vantage point's campaign writes under `dir`:
/// the vantage name lowercased with non-alphanumerics mapped to `_`,
/// plus `.json`.
pub fn checkpoint_path(dir: &Path, vantage: &str) -> std::path::PathBuf {
    let slug: String = vantage
        .chars()
        .map(|c| if c.is_ascii_alphanumeric() { c.to_ascii_lowercase() } else { '_' })
        .collect();
    dir.join(format!("{slug}.json"))
}

fn checkpoint(db: &MonitorDb, dir: Option<&Path>) -> Result<(), CampaignError> {
    let Some(dir) = dir else { return Ok(()) };
    let path = checkpoint_path(dir, &db.vantage);
    db.save_json(&path).map_err(|source| CampaignError::Checkpoint { path, source })
}

/// FNV-1a hash over the serialized vantage list — the identity a checkpoint
/// directory is stamped with. Captures count, names, AS placement, start
/// weeks, and client stacks, so any population change flips it.
pub fn population_hash(vantages: &[VantagePoint]) -> u64 {
    let json = serde_json::to_string(&vantages.to_vec()).expect("vantages serialize");
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in json.as_bytes() {
        h ^= *b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// On-disk population stamp (`population.stamp.json` inside the
/// checkpoint directory).
#[derive(Serialize, Deserialize)]
struct PopulationStamp {
    count: usize,
    hash: u64,
}

/// Validates (or creates) the checkpoint directory's population stamp.
///
/// Vantage checkpoints are keyed by name slug only, so resuming a
/// directory written under one vantage population with a study that has
/// another would silently misattribute rounds. The first study to
/// checkpoint into `dir` writes `population.stamp.json`; every later study
/// must match it or gets a typed
/// [`CampaignError::PopulationMismatch`]. Directories written before the
/// stamp existed are accepted and stamped in place (legacy checkpoints
/// were always the Table 1 six).
pub fn check_population_stamp(dir: &Path, vantages: &[VantagePoint]) -> Result<(), CampaignError> {
    let path = dir.join("population.stamp.json");
    let count = vantages.len();
    let hash = population_hash(vantages);
    match std::fs::read_to_string(&path) {
        Ok(text) => {
            let stamp: PopulationStamp =
                serde_json::from_str(&text).map_err(|e| CampaignError::Checkpoint {
                    path: path.clone(),
                    source: std::io::Error::new(
                        std::io::ErrorKind::InvalidData,
                        format!("corrupt population stamp: {e}"),
                    ),
                })?;
            if stamp.count != count || stamp.hash != hash {
                return Err(CampaignError::PopulationMismatch {
                    path,
                    stamped_count: stamp.count,
                    stamped_hash: stamp.hash,
                    count,
                    hash,
                });
            }
            Ok(())
        }
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
            // atomic temp + rename, same discipline as checkpoints
            let tmp = path.with_extension("json.tmp");
            let write = || -> std::io::Result<()> {
                let stamp = PopulationStamp { count, hash };
                std::fs::write(&tmp, serde_json::to_string(&stamp).expect("stamp serializes"))?;
                std::fs::rename(&tmp, &path)
            };
            write().map_err(|source| CampaignError::Checkpoint { path, source })
        }
        Err(source) => Err(CampaignError::Checkpoint { path, source }),
    }
}

/// Runs a full weekly campaign for one vantage point.
///
/// `list` supplies the ranked-list snapshots; `extra_ids` are the vantage
/// point's external inputs (Penn's DNS-cache tail), ingested when the
/// vantage point has `external_inputs` and the site has churned in.
/// `extra_first_seen(id)` gives each extra site's first availability week.
pub fn run_campaign(
    ctx: &ProbeContext<'_>,
    vantage: &VantagePoint,
    list: &TopList,
    extra_ids: &[u32],
    extra_first_seen: impl Fn(u32) -> u32,
    cfg: &CampaignConfig,
) -> Result<MonitorDb, CampaignError> {
    run_campaign_resumable(ctx, vantage, list, extra_ids, extra_first_seen, cfg, None, None)
}

/// [`run_campaign`] with crash recovery: `resume` continues a previous
/// partial run (its [`MonitorDb::completed_weeks`] rounds are skipped
/// without re-probing), and `checkpoint_dir` snapshots the database after
/// every round so the next invocation can resume from it.
#[allow(clippy::too_many_arguments)]
pub fn run_campaign_resumable(
    ctx: &ProbeContext<'_>,
    vantage: &VantagePoint,
    list: &TopList,
    extra_ids: &[u32],
    extra_first_seen: impl Fn(u32) -> u32,
    cfg: &CampaignConfig,
    resume: Option<MonitorDb>,
    checkpoint_dir: Option<&Path>,
) -> Result<MonitorDb, CampaignError> {
    cfg.validate()?;
    let workers = cfg.workers;
    let mut db = resume.unwrap_or_else(|| MonitorDb::new(vantage.name.clone()));
    let resume_from = db.completed_weeks.max(vantage.start_week);
    let mut monitored = MonitoredSet::new();
    for week in vantage.start_week..cfg.total_weeks {
        // an injected outage takes the whole vantage point down for the
        // round: nothing is probed, nothing enters the monitored set — the
        // site ingest below is skipped exactly as a dead monitor would
        // skip it, and churned-in sites join on recovery
        if let Some(pf) = ctx.faults {
            if pf.injector.vantage_out(&vantage.name, week) {
                if week >= resume_from {
                    ipv6web_faults::record_injection("faults.injected.vantage_outage");
                    db.outage_weeks.push(week);
                    db.completed_weeks = week + 1;
                    checkpoint(&db, checkpoint_dir)?;
                }
                continue;
            }
        }
        monitored.ingest(week, list.snapshot(week));
        if vantage.external_inputs {
            monitored
                .ingest(week, extra_ids.iter().copied().filter(|&id| extra_first_seen(id) <= week));
        }
        if week < resume_from {
            continue; // already probed by the run being resumed
        }
        // randomized order per round "to avoid time-of-day biases"
        let mut order: Vec<SiteId> = monitored.members().map(SiteId).collect();
        let mut rng = derive_rng(ctx.seed, &format!("{}:order:{week}", vantage.name));
        order.shuffle(&mut rng);

        let (results, lost) = run_pool(ctx, &order, week, 0, false, workers);
        for (site, outcome) in results {
            let added = monitored.added_week(site.0).unwrap_or(week);
            apply_outcome(&mut db, site, added, week, outcome);
        }
        note_lost(&mut db, week, lost);
        db.completed_weeks = week + 1;
        checkpoint(&db, checkpoint_dir)?;
    }
    Ok(db)
}

/// Runs the World IPv6 Day side experiment: `cfg.ipv6_day_rounds` rounds
/// against the participant subset, with server-side IPv6 penalties lifted.
/// Returns a separate database whose samples all carry the event week.
pub fn run_ipv6_day_rounds(
    ctx: &ProbeContext<'_>,
    vantage: &VantagePoint,
    participants: &[SiteId],
    event_week: u32,
    cfg: &CampaignConfig,
) -> Result<MonitorDb, CampaignError> {
    cfg.validate()?;
    let mut db = MonitorDb::new(format!("{} (IPv6 Day)", vantage.name));
    for round in 0..cfg.ipv6_day_rounds {
        let (results, lost) = run_pool(ctx, participants, event_week, round + 1, true, cfg.workers);
        for (site, outcome) in results {
            apply_outcome(&mut db, site, event_week, event_week, outcome);
        }
        note_lost(&mut db, event_week, lost);
    }
    Ok(db)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::disturbance::{DisturbanceConfig, Disturbances};

    #[test]
    fn checkpoint_dir_validation() {
        let base = std::env::temp_dir().join("ipv6web-ckptdir-validate");
        let _ = std::fs::remove_dir_all(&base);
        std::fs::create_dir_all(&base).unwrap();

        // existing directory: fine
        assert_eq!(validate_checkpoint_dir(&base), Ok(()));
        // one missing level under an existing parent: fine
        assert_eq!(validate_checkpoint_dir(&base.join("fresh")), Ok(()));
        // bare relative component (implicit cwd parent): fine
        assert_eq!(validate_checkpoint_dir(Path::new("just-a-name")), Ok(()));

        // missing parent: typed, readable error naming both paths
        let deep = base.join("no-such-parent").join("ckpt");
        match validate_checkpoint_dir(&deep) {
            Err(ConfigError::CheckpointDirMissingParent { path, parent }) => {
                assert_eq!(path, deep);
                assert_eq!(parent, base.join("no-such-parent"));
                let msg = ConfigError::CheckpointDirMissingParent { path, parent }.to_string();
                assert!(msg.contains("does not exist"), "unreadable message: {msg}");
            }
            other => panic!("expected CheckpointDirMissingParent, got {other:?}"),
        }

        // path exists but is a file
        let file = base.join("a-file");
        std::fs::write(&file, b"x").unwrap();
        assert_eq!(
            validate_checkpoint_dir(&file),
            Err(ConfigError::CheckpointDirNotADirectory { path: file.clone() })
        );
        // parent exists but is a file
        assert_eq!(
            validate_checkpoint_dir(&file.join("ckpt")),
            Err(ConfigError::CheckpointDirNotADirectory { path: file.clone() })
        );
        std::fs::remove_dir_all(&base).ok();
    }
    use crate::probe::ProbeFaults;
    use ipv6web_bgp::BgpTable;
    use ipv6web_faults::{FaultInjector, FaultPlan, RetryPolicy, VantageOutage};
    use ipv6web_netsim::TcpConfig;
    use ipv6web_stats::RelativeCiRule;
    use ipv6web_topology::{generate as gen_topo, AsId, Family, Tier, TopologyConfig};
    use ipv6web_web::{build_zone, population, PopulationConfig, Site};

    struct World {
        topo: ipv6web_topology::Topology,
        sites: Vec<Site>,
        zone: ipv6web_dns::ZoneDb,
        table_v4: BgpTable,
        table_v6: BgpTable,
        disturbances: Disturbances,
        list: TopList,
        vantage: VantagePoint,
    }

    fn world(n_sites: usize) -> World {
        let topo = gen_topo(&TopologyConfig::test_small(), 77);
        let mut pop_cfg = PopulationConfig::test_small(20);
        pop_cfg.n_sites = n_sites;
        let (sites, names) = population::generate(&pop_cfg, &topo, 77);
        let zone = build_zone(&topo, &sites, names);
        let vantage_as =
            topo.nodes().iter().find(|n| n.tier == Tier::Access && n.is_dual_stack()).unwrap().id;
        let mut dests: Vec<AsId> = sites.iter().map(|s| s.v4_as).collect();
        dests.extend(sites.iter().filter_map(|s| s.v6.as_ref().map(|v| v.dest_as)));
        dests.sort();
        dests.dedup();
        let table_v4 = BgpTable::build(&topo, vantage_as, Family::V4, &dests);
        let table_v6 = BgpTable::build(&topo, vantage_as, Family::V6, &dests);
        let disturbances = Disturbances::generate(&DisturbanceConfig::paper(), sites.len(), 20, 77);
        let list = TopList::from_parts(sites.iter().map(|s| (s.id.0, s.rank, s.first_seen_week)));
        let vantage = VantagePoint {
            name: "TestVP".into(),
            location: "Lab".into(),
            as_id: vantage_as,
            start_week: 0,
            has_as_path: true,
            white_listed: false,
            kind: crate::vantage::VantageKind::Academic,
            external_inputs: false,
            stack: ipv6web_xlat::ClientStack::DualStack,
        };
        World { topo, sites, zone, table_v4, table_v6, disturbances, list, vantage }
    }

    fn ctx<'a>(w: &'a World) -> ProbeContext<'a> {
        ProbeContext {
            topo: &w.topo,
            sites: &w.sites,
            zone: &w.zone,
            table_v4: &w.table_v4,
            table_v6: &w.table_v6,
            disturbances: &w.disturbances,
            tcp: TcpConfig::paper(),
            ci_rule: RelativeCiRule::paper(),
            identity_threshold: 0.06,
            round_noise_sigma: 0.08,
            seed: 42,
            vantage_name: "TestVP",
            white_listed: false,
            v6_epoch: None,
            faults: None,
            stack: ipv6web_xlat::ClientStack::DualStack,
            xlat: None,
        }
    }

    #[test]
    fn campaign_produces_samples_for_dual_sites() {
        let w = world(400);
        let c = ctx(&w);
        let cfg = CampaignConfig::test_small();
        let db = run_campaign(&c, &w.vantage, &w.list, &[], |_| 0, &cfg).unwrap();
        assert!(db.len() > 300, "most sites monitored, got {}", db.len());
        let dual: Vec<SiteId> = db.dual_stack_sites().collect();
        assert!(!dual.is_empty(), "some dual-stack sites observed");
        let with_samples =
            dual.iter().filter(|s| !db.record(**s).unwrap().samples_v4.is_empty()).count();
        assert!(with_samples > 0, "performance samples collected");
        // v4-only sites must have no samples
        for (site, rec) in db.iter() {
            if rec.dual_since.is_none() {
                assert!(rec.samples_v4.is_empty(), "{site}: v4-only site sampled");
            }
        }
        assert!(db.round_errors.is_empty(), "healthy run loses nothing");
        assert_eq!(db.completed_weeks, cfg.total_weeks);
    }

    #[test]
    fn campaign_deterministic_across_worker_counts() {
        let w = world(120);
        let c = ctx(&w);
        let mut cfg1 = CampaignConfig::test_small();
        cfg1.total_weeks = 6;
        cfg1.workers = 1;
        let mut cfg8 = cfg1;
        cfg8.workers = 8;
        let db1 = run_campaign(&c, &w.vantage, &w.list, &[], |_| 0, &cfg1).unwrap();
        let db8 = run_campaign(&c, &w.vantage, &w.list, &[], |_| 0, &cfg8).unwrap();
        assert_eq!(db1, db8, "scheduling must not affect results");
    }

    #[test]
    fn config_validation_rejects_bad_worker_counts() {
        assert!(CampaignConfig::paper().validate().is_ok());
        assert!(CampaignConfig::test_small().validate().is_ok());
        let mut zero = CampaignConfig::test_small();
        zero.workers = 0;
        assert_eq!(zero.validate(), Err(ConfigError::ZeroWorkers));
        let mut over = CampaignConfig::test_small();
        over.workers = over.max_workers + 1;
        assert_eq!(
            over.validate(),
            Err(ConfigError::WorkersExceedCap { workers: 26, max_workers: 25 }),
            "over-cap must be an error, not a clamp"
        );
        let mut no_cap = CampaignConfig::test_small();
        no_cap.max_workers = 0;
        assert_eq!(no_cap.validate(), Err(ConfigError::ZeroWorkerCap));
    }

    #[test]
    fn campaign_errors_on_over_cap_workers() {
        let w = world(10);
        let c = ctx(&w);
        let mut cfg = CampaignConfig::test_small();
        cfg.workers = cfg.max_workers + 10;
        let err = run_campaign(&c, &w.vantage, &w.list, &[], |_| 0, &cfg).unwrap_err();
        assert!(
            matches!(err, CampaignError::Config(ConfigError::WorkersExceedCap { .. })),
            "got {err}"
        );
        assert!(err.to_string().contains("exceeds max_workers"), "{err}");
    }

    #[test]
    fn late_start_vantage_sees_fewer_weeks() {
        let w = world(150);
        let c = ctx(&w);
        let mut late = w.vantage.clone();
        late.start_week = 15;
        let cfg = CampaignConfig::test_small();
        let db = run_campaign(&c, &late, &w.list, &[], |_| 0, &cfg).unwrap();
        for (_, rec) in db.iter() {
            assert!(rec.added_week >= 15);
            for s in rec.samples_v4.iter().chain(&rec.samples_v6) {
                assert!(s.week >= 15);
            }
        }
    }

    #[test]
    fn external_inputs_only_for_flagged_vantage() {
        let w = world(100);
        let c = ctx(&w);
        let mut cfg = CampaignConfig::test_small();
        cfg.total_weeks = 3;
        let extra = [5000u32, 5001];
        // not flagged: extras ignored (and they're beyond the site vec, so
        // probing them would panic — their absence proves they're skipped)
        let db = run_campaign(&c, &w.vantage, &w.list, &extra, |_| 0, &cfg).unwrap();
        assert!(db.record(SiteId(5000)).is_none());
    }

    #[test]
    fn churned_sites_join_late() {
        let w = world(300);
        let c = ctx(&w);
        let cfg = CampaignConfig::test_small();
        let db = run_campaign(&c, &w.vantage, &w.list, &[], |_| 0, &cfg).unwrap();
        let late_site = w
            .sites
            .iter()
            .find(|s| (5..cfg.total_weeks - 1).contains(&s.first_seen_week))
            .expect("some churned site");
        let rec = db.record(late_site.id).expect("monitored eventually");
        assert_eq!(rec.added_week, late_site.first_seen_week);
    }

    #[test]
    fn reachability_grows_over_campaign() {
        let w = world(500);
        let c = ctx(&w);
        let cfg = CampaignConfig::test_small();
        let db = run_campaign(&c, &w.vantage, &w.list, &[], |_| 0, &cfg).unwrap();
        let early = db.reachability_at(1);
        let late = db.reachability_at(cfg.total_weeks - 1);
        // churn adds v4-only sites to the denominator, so small dips are
        // legitimate; collapse is not (this population publishes all AAAA
        // records from week 0)
        assert!(late >= early * 0.8, "reachability must not collapse: {early} -> {late}");
        assert!(late > 0.0);
    }

    #[test]
    fn ipv6_day_rounds_accumulate_samples() {
        let w = world(300);
        let c = ctx(&w);
        let cfg = CampaignConfig::test_small();
        let participants: Vec<SiteId> = w
            .sites
            .iter()
            .filter(|s| s.v6.as_ref().is_some_and(|v| v.ipv6_day_participant && v.from_week <= 10))
            .map(|s| s.id)
            .collect();
        assert!(!participants.is_empty(), "some participants in population");
        let db = run_ipv6_day_rounds(&c, &w.vantage, &participants, 10, &cfg).unwrap();
        let sampled = participants
            .iter()
            .filter(|s| db.record(**s).is_some_and(|r| r.samples_v4.len() >= 2))
            .count();
        assert!(sampled > 0, "multiple rounds must stack samples");
        // all samples carry the event week
        for (_, rec) in db.iter() {
            for s in rec.samples_v4.iter().chain(&rec.samples_v6) {
                assert_eq!(s.week, 10);
            }
        }
    }

    #[test]
    fn resumed_campaign_matches_uninterrupted_run() {
        let w = world(120);
        let c = ctx(&w);
        let mut cfg = CampaignConfig::test_small();
        cfg.total_weeks = 6;
        let full = run_campaign(&c, &w.vantage, &w.list, &[], |_| 0, &cfg).unwrap();

        // simulate a crash after week 2 by running a truncated campaign...
        let mut head_cfg = cfg;
        head_cfg.total_weeks = 3;
        let partial = run_campaign(&c, &w.vantage, &w.list, &[], |_| 0, &head_cfg).unwrap();
        assert_eq!(partial.completed_weeks, 3);
        // ...then resuming it to the full horizon
        let resumed =
            run_campaign_resumable(&c, &w.vantage, &w.list, &[], |_| 0, &cfg, Some(partial), None)
                .unwrap();
        assert_eq!(resumed, full, "resume must not re-probe or skip any round");
    }

    #[test]
    fn checkpoints_written_every_round_and_loadable() {
        let w = world(60);
        let c = ctx(&w);
        let mut cfg = CampaignConfig::test_small();
        cfg.total_weeks = 3;
        let dir = std::env::temp_dir().join("ipv6web-ckpt-test");
        std::fs::create_dir_all(&dir).unwrap();
        let db =
            run_campaign_resumable(&c, &w.vantage, &w.list, &[], |_| 0, &cfg, None, Some(&dir))
                .unwrap();
        let snap = MonitorDb::load_json(dir.join("testvp.json")).unwrap();
        assert_eq!(snap, db, "final checkpoint equals the returned database");
        std::fs::remove_file(dir.join("testvp.json")).ok();
    }

    #[test]
    fn population_stamp_detects_mismatch() {
        use crate::vantage::VantagePoint;
        let dir = std::env::temp_dir().join("ipv6web-popstamp-test");
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).unwrap();
        let ids: Vec<ipv6web_topology::AsId> = (0..6).map(ipv6web_topology::AsId).collect();
        let six = VantagePoint::paper_table1(&ids);
        // legacy dir without a stamp: accepted, stamped in place
        check_population_stamp(&dir, &six).unwrap();
        assert!(dir.join("population.stamp.json").exists());
        // the same population resumes fine
        check_population_stamp(&dir, &six).unwrap();
        // a dir written with 6 must reject a resume with 200
        let mut big = Vec::new();
        for i in 0..200u32 {
            let mut v = six[0].clone();
            v.name = format!("VP-{i:03}");
            v.as_id = ipv6web_topology::AsId(1000 + i);
            big.push(v);
        }
        match check_population_stamp(&dir, &big) {
            Err(CampaignError::PopulationMismatch { stamped_count, count, .. }) => {
                assert_eq!(stamped_count, 6);
                assert_eq!(count, 200);
            }
            other => panic!("expected PopulationMismatch, got {other:?}"),
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn injected_outage_skips_rounds_and_recovers() {
        let w = world(100);
        let base = ctx(&w);
        let mut cfg = CampaignConfig::test_small();
        cfg.total_weeks = 8;
        let mut plan = FaultPlan::default();
        plan.vantage_outages.push(VantageOutage {
            vantage: "TestVP".into(),
            from_week: 2,
            weeks: 2,
        });
        let injector = FaultInjector::new(plan, base.seed);
        let pf =
            ProbeFaults { injector: &injector, retry: RetryPolicy::paper(), v6_epochs: vec![] };
        let c = ProbeContext { faults: Some(&pf), ..base };
        let db = run_campaign(&c, &w.vantage, &w.list, &[], |_| 0, &cfg).unwrap();
        assert_eq!(db.outage_weeks, vec![2, 3]);
        assert_eq!(db.completed_weeks, cfg.total_weeks);
        for (_, rec) in db.iter() {
            for s in rec.samples_v4.iter().chain(&rec.samples_v6) {
                assert!(s.week != 2 && s.week != 3, "no samples during the outage");
            }
        }
        // rounds resumed after the outage window
        assert!(db.iter().any(|(_, r)| r.samples_v4.iter().any(|s| s.week > 3)));
    }
}
