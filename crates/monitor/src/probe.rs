//! Monitoring one site in one round (the per-thread unit of work).
//!
//! With fault injection active ([`ProbeContext::faults`]), every exchange
//! of the pipeline can fail: DNS queries SERVFAIL/time out/truncate, HTTP
//! exchanges stall, reset or arrive torn, and injected link faults
//! black-hole or degrade a family's path. The probe retries transient
//! failures under the plan's [`RetryPolicy`] — capped exponential backoff
//! on a simulated [`FaultClock`], never the wall clock — and classifies
//! what it cannot recover into dedicated [`ProbeOutcome`] variants instead
//! of panicking. With `faults: None` the pipeline is bit-identical to the
//! fault-free implementation: fault decisions live on separate RNG label
//! streams and no extra draw ever touches the probe's own stream.

use crate::db::PerfSample;
use crate::disturbance::Disturbances;
use ipv6web_bgp::{BgpTable, RouteRef};
use ipv6web_dns::{DnsError, Record, RecordData, RecordType, Resolver, ZoneDb};
use ipv6web_faults::{DnsFaultKind, FaultClock, FaultInjector, HttpFaultKind, RetryPolicy};
use ipv6web_netsim::{download_time, translated_metrics, DataPlane, PathMetrics, TcpConfig};
use ipv6web_stats::ci::SamplingDecision;
use ipv6web_stats::{derive_rng, lognormal, mean_ci, RelativeCiRule, StudentT, Welford};
use ipv6web_topology::{Family, Topology};
use ipv6web_web::{
    build_request, build_response_header, pages_identical, parse_response_len, truncate_response,
    Site, SiteId,
};
use ipv6web_xlat::{ClientStack, XlatWiring};
use rand::Rng;

/// Per-campaign fault wiring, shared read-only by every probe of one
/// vantage point.
#[derive(Debug)]
pub struct ProbeFaults<'a> {
    /// The fault decision function.
    pub injector: &'a FaultInjector,
    /// How probes retry through injected faults.
    pub retry: RetryPolicy,
    /// The cumulative v6 routing epoch chain — `(effective week, table)`
    /// sorted by week, covering the scenario's scheduled route change
    /// *and* injected BGP session flaps. When present it supersedes
    /// [`ProbeContext::v6_epoch`]: a probe uses the latest epoch whose week
    /// has arrived, falling back to [`ProbeContext::table_v6`].
    pub v6_epochs: Vec<(u32, &'a BgpTable)>,
}

/// The translation plane as one vantage's probes see it: the world's
/// gateway wiring plus this vantage's gateway preference order. Present
/// only on v6-only vantages of a scenario with NAT64 gateways.
#[derive(Debug, Clone, Copy)]
pub struct ProbeXlat<'a> {
    /// Gateway placement, cost draws, and per-gateway v4 tables.
    pub wiring: &'a XlatWiring,
    /// Gateway indices in this vantage's preference order (nearest first
    /// by v6 AS-path length).
    pub pref: &'a [usize],
    /// Host-side CLAT per-exchange latency, ms (charged by 464XLAT
    /// vantages on every translated exchange; ignored by plain v6-only).
    pub clat_ms: f64,
}

/// Everything a probe needs, shared read-only across worker threads.
#[derive(Clone, Copy)]
pub struct ProbeContext<'a> {
    /// The topology (for the data plane).
    pub topo: &'a Topology,
    /// The site population, indexed by `SiteId`.
    pub sites: &'a [Site],
    /// Authoritative DNS.
    pub zone: &'a ZoneDb,
    /// The vantage point's IPv4 BGP table.
    pub table_v4: &'a BgpTable,
    /// The vantage point's IPv6 BGP table.
    pub table_v6: &'a BgpTable,
    /// Injected performance disturbances.
    pub disturbances: &'a Disturbances,
    /// TCP model parameters.
    pub tcp: TcpConfig,
    /// The repeat-until-confident rule (paper: 95% CI within 10%).
    pub ci_rule: RelativeCiRule,
    /// Page identity threshold (paper: 0.06).
    pub identity_threshold: f64,
    /// σ of the cross-round congestion factor (log-normal), applied to both
    /// families alike.
    pub round_noise_sigma: f64,
    /// Campaign seed.
    pub seed: u64,
    /// Vantage point name (part of the RNG derivation).
    pub vantage_name: &'a str,
    /// Whether this vantage point's resolver is white-listed (Table 1's
    /// W-L column): non-white-listed monitors never receive AAAA answers
    /// from white-list-gated sites (the Google model).
    pub white_listed: bool,
    /// Mid-campaign IPv6 route change: from the given week onward, v6
    /// routes come from this table instead of `table_v6`. Superseded by
    /// `faults` (whose epoch chain includes this event) when present.
    pub v6_epoch: Option<(u32, &'a BgpTable)>,
    /// Fault injection wiring; `None` runs the fault-free pipeline.
    pub faults: Option<&'a ProbeFaults<'a>>,
    /// The vantage host's client stack. [`ClientStack::DualStack`] runs
    /// the classic pipeline bit-for-bit; the v6-only stacks reach the v4
    /// side of every site through `xlat`.
    pub stack: ClientStack,
    /// The translation plane, when this vantage needs one.
    pub xlat: Option<ProbeXlat<'a>>,
}

/// What one probe of one site produced.
#[derive(Debug, Clone, PartialEq)]
pub enum ProbeOutcome {
    /// The name does not resolve at all.
    NxDomain,
    /// A record only — the overwhelmingly common case in 2011.
    V4Only,
    /// Dual-stack in DNS but no BGP route in one family from here.
    Unroutable(Family),
    /// Dual-stack but the two pages differ beyond the identity threshold.
    DifferentContent,
    /// Both families measured to confidence.
    Measured {
        /// Accepted IPv4 sample.
        v4: PerfSample,
        /// Accepted IPv6 sample.
        v6: PerfSample,
    },
    /// The sampling cap was reached without confidence in `0`.
    Unconfident(Family),
    /// A response arrived that failed to parse (truncated/corrupted); the
    /// sanitizer discards the round.
    Malformed,
    /// DNS failed beyond the retry policy; nothing can be concluded about
    /// the site's records this round.
    DnsFailure,
    /// The exchange over `0` kept failing past the retry budget (resets,
    /// black-holed path) — the round's equivalent of a stuck connection.
    TimedOut(Family),
}

/// Runs the Fig 2 pipeline for `site` at `week`.
///
/// `salt` distinguishes multiple rounds within the same week (the World
/// IPv6 Day 30-minute cadence); weekly rounds pass 0. `ipv6_day_mode`
/// lifts server-side IPv6 penalties (participants had made their
/// end-systems "fully IPv6 qualified") — used by the World IPv6 Day rounds
/// feeding Tables 10 and 12.
pub fn probe_site(
    ctx: &ProbeContext<'_>,
    resolver: &mut Resolver,
    site_id: SiteId,
    week: u32,
    salt: u32,
    ipv6_day_mode: bool,
) -> ProbeOutcome {
    let mut fs = ctx.faults.map(FaultSession::new);
    let out = probe_site_inner(ctx, resolver, &mut fs, site_id, week, salt, ipv6_day_mode);
    if let Some(fs) = fs {
        if fs.retried > 0 {
            ipv6web_obs::observe("faults.retries_per_probe", u64::from(fs.retried));
        }
    }
    out
}

fn probe_site_inner(
    ctx: &ProbeContext<'_>,
    resolver: &mut Resolver,
    fs: &mut Option<FaultSession<'_>>,
    site_id: SiteId,
    week: u32,
    salt: u32,
    ipv6_day_mode: bool,
) -> ProbeOutcome {
    ipv6web_obs::inc("monitor.probes");
    let site = &ctx.sites[site_id.index()];
    let mut rng = derive_rng(
        ctx.seed,
        &format!("{}:probe:{}:{}:{}", ctx.vantage_name, week, salt, site_id.0),
    );
    let now_s = week as u64 * 604_800 + rng.gen_range(0..600_000);

    // --- phase 1: DNS ------------------------------------------------------
    let Ok(a) =
        resolve_through_faults(ctx, resolver, fs, site_id, RecordType::A, week, salt, now_s)
    else {
        ipv6web_obs::inc("monitor.outcome.dns_failure");
        return ProbeOutcome::DnsFailure;
    };
    let Some(a) = a else {
        ipv6web_obs::inc("monitor.outcome.nxdomain");
        return ProbeOutcome::NxDomain;
    };
    let Ok(aaaa) =
        resolve_through_faults(ctx, resolver, fs, site_id, RecordType::Aaaa, week, salt, now_s)
    else {
        ipv6web_obs::inc("monitor.outcome.dns_failure");
        return ProbeOutcome::DnsFailure;
    };
    let aaaa = aaaa.unwrap_or_default();
    if a.is_empty() || aaaa.is_empty() {
        ipv6web_obs::inc("monitor.outcome.v4_only");
        return ProbeOutcome::V4Only;
    }
    if site.v6.as_ref().is_some_and(|v| v.whitelist_only) && !ctx.white_listed {
        // the authority answers AAAA only to certified resolvers
        ipv6web_obs::inc("monitor.whitelist_denials");
        ipv6web_obs::inc("monitor.outcome.v4_only");
        return ProbeOutcome::V4Only;
    }
    if ctx.stack.translates_v4() {
        // A v6-only monitor's DNS64 resolver synthesized every one of these
        // AAAA records: the site has no native v6 presence and is reachable
        // only through the translator. Keep the classic classification (the
        // reachability tables count native dual-stack) and count it for the
        // xlat report.
        let all_synthesized = !aaaa.is_empty()
            && aaaa.iter().all(|r| match r.data {
                RecordData::V6(v6) => ipv6web_xlat::is_synthesized(v6),
                RecordData::V4(_) => false,
            });
        if all_synthesized {
            ipv6web_obs::inc("xlat.translator_only");
            ipv6web_obs::inc("monitor.outcome.v4_only");
            return ProbeOutcome::V4Only;
        }
    }

    // --- phase 2: routability + one download per family --------------------
    let v6_table = match fs.as_ref() {
        Some(s) => s
            .faults
            .v6_epochs
            .iter()
            .rev()
            .find(|(epoch_week, _)| week >= *epoch_week)
            .map_or(ctx.table_v6, |(_, late)| *late),
        None => match ctx.v6_epoch {
            Some((epoch_week, late)) if week >= epoch_week => late,
            _ => ctx.table_v6,
        },
    };
    // The v4-family slot: a dual-stack host routes natively; a v6-only host
    // reaches the site's v4 presence through the first live NAT64 gateway in
    // its preference order (v6 leg to the gateway, v4 leg onward).
    enum V4Slot<'r> {
        Native(RouteRef<'r>),
        Translated { leg6: RouteRef<'r>, leg4: RouteRef<'r>, gw: usize },
    }
    let v4_slot = if ctx.stack.translates_v4() {
        let Some(x) = ctx.xlat else {
            // a v6-only host without a translation plane has no path to
            // the v4 side at all
            ipv6web_obs::inc("monitor.outcome.unroutable");
            return ProbeOutcome::Unroutable(Family::V4);
        };
        let mut live = None;
        for &gw in x.pref {
            if fs.as_ref().is_some_and(|s| s.faults.injector.xlat_out(gw, week)) {
                ipv6web_faults::record_injection("faults.injected.xlat");
                continue;
            }
            live = Some(gw);
            break;
        }
        let Some(gw) = live else {
            // every gateway dark: the translated side black-holes and the
            // probe spends its retry budget against it
            if let Some(s) = fs.as_mut() {
                s.burn_retries();
            }
            ipv6web_obs::inc("monitor.outcome.timed_out");
            return ProbeOutcome::TimedOut(Family::V4);
        };
        let Some(leg6) = v6_table.route(x.wiring.gateways[gw]) else {
            ipv6web_obs::inc("monitor.outcome.unroutable");
            return ProbeOutcome::Unroutable(Family::V4);
        };
        let Some(leg4) = x.wiring.tables[gw].route(site.v4_as) else {
            ipv6web_obs::inc("monitor.outcome.unroutable");
            return ProbeOutcome::Unroutable(Family::V4);
        };
        V4Slot::Translated { leg6, leg4, gw }
    } else {
        let Some(route4) = ctx.table_v4.route(site.v4_as) else {
            ipv6web_obs::inc("monitor.outcome.unroutable");
            return ProbeOutcome::Unroutable(Family::V4);
        };
        V4Slot::Native(route4)
    };
    // An AAAA answer without site v6 metadata cannot happen through the
    // simulated zone; treat it defensively as v4-only rather than panicking.
    let Some(site_v6) = site.v6.as_ref() else {
        ipv6web_obs::inc("monitor.outcome.v4_only");
        return ProbeOutcome::V4Only;
    };
    let Some(route6) = v6_table.route(site_v6.dest_as) else {
        ipv6web_obs::inc("monitor.outcome.unroutable");
        return ProbeOutcome::Unroutable(Family::V6);
    };

    // Injected link faults: a down link on the path black-holes the family
    // (connects keep timing out until the retry budget is spent); loss
    // bursts degrade the measured path instead. A translated v4 slot is
    // down if either of its legs is, and composes both legs' loss bursts.
    let mut extra_loss = [0.0f64; 2];
    if let Some(s) = fs.as_mut() {
        let v4_slot_impact = match &v4_slot {
            V4Slot::Native(route4) => s.faults.injector.link_impact(week, Family::V4, route4.edges),
            V4Slot::Translated { leg6, leg4, .. } => {
                let i6 = s.faults.injector.link_impact(week, Family::V6, leg6.edges);
                let i4 = s.faults.injector.link_impact(week, Family::V4, leg4.edges);
                ipv6web_faults::LinkImpact {
                    down: i6.down || i4.down,
                    extra_loss: 1.0 - (1.0 - i6.extra_loss) * (1.0 - i4.extra_loss),
                }
            }
        };
        let v6_impact = s.faults.injector.link_impact(week, Family::V6, route6.edges);
        for (slot, family, impact) in
            [(0usize, Family::V4, v4_slot_impact), (1usize, Family::V6, v6_impact)]
        {
            if impact.down {
                s.burn_retries();
                ipv6web_obs::inc("monitor.outcome.timed_out");
                return ProbeOutcome::TimedOut(family);
            }
            extra_loss[slot] = impact.extra_loss;
        }
    }

    // The HTTP exchange, once per family. Only `Content-Length` feeds the
    // identity rule, so the simulated server sends headers without
    // materializing the (deterministic) body — byte-identical decisions at
    // a fraction of the cost.
    let req = build_request(ctx.zone.name_of(site.name));
    debug_assert!(req.starts_with(b"GET / HTTP/1.1"));
    let fetch = |family: Family, fs: &mut Option<FaultSession<'_>>| -> Result<Vec<u8>, ()> {
        let resp = build_response_header(site.page_bytes(family) as usize);
        let Some(s) = fs.as_mut() else { return Ok(resp) };
        let mut attempt = 0u32;
        loop {
            match s.faults.injector.http_fault(
                ctx.vantage_name,
                site_id.0,
                family,
                "hdr",
                week,
                salt,
                attempt,
            ) {
                // a stall delays an untimed exchange: harmless here
                None | Some((HttpFaultKind::Stall, _)) => {
                    if attempt > 0 {
                        ipv6web_obs::inc("faults.probe.recovered");
                    }
                    return Ok(resp);
                }
                // torn mid-header: delivered, but unparseable
                Some((HttpFaultKind::Truncate, _)) => return Ok(truncate_response(&resp)),
                Some((HttpFaultKind::Reset, _)) => {
                    let cost = s.faults.retry.timeout_ms;
                    if !s.try_again(attempt, cost) {
                        return Err(());
                    }
                    attempt += 1;
                }
            }
        }
    };
    let Ok(resp4) = fetch(Family::V4, fs) else {
        ipv6web_obs::inc("monitor.outcome.timed_out");
        return ProbeOutcome::TimedOut(Family::V4);
    };
    let Ok(resp6) = fetch(Family::V6, fs) else {
        ipv6web_obs::inc("monitor.outcome.timed_out");
        return ProbeOutcome::TimedOut(Family::V6);
    };
    let Some((_, len4)) = parse_response_len(&resp4) else {
        ipv6web_obs::inc("monitor.outcome.malformed");
        return ProbeOutcome::Malformed;
    };
    let Some((_, len6)) = parse_response_len(&resp6) else {
        ipv6web_obs::inc("monitor.outcome.malformed");
        return ProbeOutcome::Malformed;
    };
    if !pages_identical(len4 as u64, len6 as u64, ctx.identity_threshold) {
        ipv6web_obs::inc("monitor.outcome.different_content");
        return ProbeOutcome::DifferentContent;
    }

    // --- phase 3: confidence-driven performance sampling --------------------
    let dp = DataPlane::new(ctx.topo);
    let shared_round_factor = lognormal(&mut rng, 1.0, ctx.round_noise_sigma);
    let disturbance_factor = ctx.disturbances.factor(site_id, week);
    // unique id per downloaded exchange, so retries of different downloads
    // never share a fault decision stream
    let mut exchange = 0u32;

    let mut measure = |family: Family,
                       metrics: PathMetrics,
                       fs: &mut Option<FaultSession<'_>>|
     -> MeasureEnd {
        let bytes = site.page_bytes(family);
        let v6_factor =
            if ipv6_day_mode && family == Family::V6 { 1.0 } else { site.server.v6_service_factor };
        // A CDN-fronted IPv4 presence is served by the CDN's edge servers,
        // not the origin: fast, high-capacity, low think time. That is the
        // whole value proposition the paper's Table 6 quantifies.
        let v4_via_cdn = ctx.topo.node(site.v4_as).tier == ipv6web_topology::Tier::Cdn;
        let rate_cap = match family {
            Family::V4 if v4_via_cdn => 8_000.0,
            Family::V4 => site.server.rate_cap_kbps,
            Family::V6 => site.server.rate_cap_kbps * v6_factor,
        };
        let think_ms = match family {
            Family::V4 if v4_via_cdn => 5.0,
            Family::V4 => site.server.think_ms,
            Family::V6 => site.server.think_ms / v6_factor,
        };
        let extra_rtt = match family {
            Family::V4 => 0.0,
            Family::V6 => site.v6.as_ref().map_or(0.0, |v| 2.0 * v.extra_v6_rtt_ms),
        };
        let eff = PathMetrics {
            bottleneck_kbps: metrics.bottleneck_kbps.min(rate_cap),
            rtt_ms: metrics.rtt_ms + extra_rtt,
            ..metrics
        };
        let mut times = Welford::new();
        loop {
            // "each after proper resetting to avoid local caching effects"
            resolver.flush();
            // server-side faults for this download: stalls slow it, resets
            // and truncations force a retried exchange
            let mut injected_stall_ms = 0.0;
            if let Some(s) = fs.as_mut() {
                let mut attempt = 0u32;
                loop {
                    exchange += 1;
                    match s.faults.injector.http_fault(
                        ctx.vantage_name,
                        site_id.0,
                        family,
                        "dl",
                        week,
                        salt,
                        exchange,
                    ) {
                        None => break,
                        Some((HttpFaultKind::Stall, stall_ms)) => {
                            injected_stall_ms = stall_ms;
                            break;
                        }
                        Some((HttpFaultKind::Reset | HttpFaultKind::Truncate, _)) => {
                            let cost = s.faults.retry.timeout_ms;
                            if !s.try_again(attempt, cost) {
                                return MeasureEnd::TimedOut;
                            }
                            attempt += 1;
                        }
                    }
                }
                if attempt > 0 {
                    ipv6web_obs::inc("faults.probe.recovered");
                }
            }
            let out = download_time(&mut rng, bytes, &eff, think_ms + injected_stall_ms, &ctx.tcp);
            ipv6web_obs::inc("monitor.downloads");
            times.push(out.time_s);
            match ctx.ci_rule.decide(&times) {
                SamplingDecision::Continue => {
                    // every extra pass is a CI-rule repeat
                    ipv6web_obs::inc("monitor.ci_repeats");
                    continue;
                }
                SamplingDecision::GiveUp => {
                    ipv6web_obs::inc("monitor.ci_giveups");
                    return MeasureEnd::Unconfident;
                }
                SamplingDecision::Accept => {
                    ipv6web_obs::observe("monitor.downloads_per_sample", times.count());
                    let ci = mean_ci(&times, StudentT::P95);
                    debug_assert!(
                        ci.relative_half_width() <= ctx.ci_rule.relative_tolerance + 1e-9
                    );
                    let speed =
                        bytes as f64 / 1024.0 / ci.mean * shared_round_factor * disturbance_factor;
                    return MeasureEnd::Sample(PerfSample {
                        week,
                        speed_kbps: speed,
                        downloads: times.count() as u32,
                    });
                }
            }
        }
    };

    // "first for IPv4 and then IPv6"
    let mut m4 = match &v4_slot {
        V4Slot::Native(route4) => dp.metrics(*route4, Family::V4),
        V4Slot::Translated { leg6, leg4, gw } => {
            ipv6web_obs::inc("xlat.translated_paths");
            let mut m = translated_metrics(
                &dp.metrics(*leg6, Family::V6),
                &dp.metrics(*leg4, Family::V4),
                &ctx.xlat.expect("translated slot implies xlat plane").wiring.costs[*gw],
            );
            if ctx.stack.has_clat() {
                // the CLAT on the host stateless-translates in both
                // directions before the packet ever reaches the PLAT
                m.rtt_ms += 2.0 * ctx.xlat.expect("translated slot implies xlat plane").clat_ms;
            }
            m
        }
    };
    if extra_loss[0] > 0.0 {
        m4 = m4.with_extra_loss(extra_loss[0]);
    }
    let v4 = match measure(Family::V4, m4, fs) {
        MeasureEnd::Sample(s) => s,
        MeasureEnd::Unconfident => {
            ipv6web_obs::inc("monitor.outcome.unconfident");
            return ProbeOutcome::Unconfident(Family::V4);
        }
        MeasureEnd::TimedOut => {
            ipv6web_obs::inc("monitor.outcome.timed_out");
            return ProbeOutcome::TimedOut(Family::V4);
        }
    };
    let mut m6 = dp.metrics(route6, Family::V6);
    if extra_loss[1] > 0.0 {
        m6 = m6.with_extra_loss(extra_loss[1]);
    }
    let v6 = match measure(Family::V6, m6, fs) {
        MeasureEnd::Sample(s) => s,
        MeasureEnd::Unconfident => {
            ipv6web_obs::inc("monitor.outcome.unconfident");
            return ProbeOutcome::Unconfident(Family::V6);
        }
        MeasureEnd::TimedOut => {
            ipv6web_obs::inc("monitor.outcome.timed_out");
            return ProbeOutcome::TimedOut(Family::V6);
        }
    };
    ipv6web_obs::inc("monitor.outcome.measured");
    ProbeOutcome::Measured { v4, v6 }
}

enum MeasureEnd {
    Sample(PerfSample),
    Unconfident,
    TimedOut,
}

/// Cost charged for a failed DNS exchange that answers quickly (SERVFAIL,
/// torn response) — unlike a timeout, the failure is visible almost
/// immediately.
const DNS_FAIL_COST_MS: f64 = 40.0;

/// Per-probe fault-handling state: the sim-time clock plus retry counting.
struct FaultSession<'a> {
    faults: &'a ProbeFaults<'a>,
    clock: FaultClock,
    retried: u32,
}

impl<'a> FaultSession<'a> {
    fn new(faults: &'a ProbeFaults<'a>) -> Self {
        FaultSession { faults, clock: FaultClock::new(faults.retry.probe_budget_ms), retried: 0 }
    }

    /// Charges one failed exchange (`cost_ms`) and decides whether attempt
    /// `attempt + 1` may run: on yes, charges the backoff and counts the
    /// retry; on no (attempt cap or budget exhausted), counts the
    /// abandonment.
    fn try_again(&mut self, attempt: u32, cost_ms: f64) -> bool {
        self.clock.advance(cost_ms);
        if attempt + 1 >= self.faults.retry.max_attempts || self.clock.expired() {
            ipv6web_obs::inc("faults.probe.abandoned");
            return false;
        }
        self.clock.advance(self.faults.retry.backoff_ms(attempt));
        self.retried += 1;
        ipv6web_obs::inc("faults.probe.retried");
        true
    }

    /// Spends the whole retry budget against a black-holed path (every
    /// connect times out; nothing to vary per attempt).
    fn burn_retries(&mut self) {
        let mut attempt = 0u32;
        loop {
            let cost = self.faults.retry.timeout_ms;
            if !self.try_again(attempt, cost) {
                return;
            }
            attempt += 1;
        }
    }
}

fn dns_error_of(kind: DnsFaultKind) -> DnsError {
    match kind {
        DnsFaultKind::ServFail => DnsError::ServFail,
        DnsFaultKind::Timeout => DnsError::Timeout,
        DnsFaultKind::Truncated => DnsError::Truncated,
    }
}

/// One DNS lookup, retried through injected faults. `Err(())` means the
/// retry policy was exhausted; `Ok(None)` is an authoritative NXDOMAIN.
#[allow(clippy::too_many_arguments)]
fn resolve_through_faults(
    ctx: &ProbeContext<'_>,
    resolver: &mut Resolver,
    fs: &mut Option<FaultSession<'_>>,
    site_id: SiteId,
    qtype: RecordType,
    week: u32,
    salt: u32,
    now_s: u64,
) -> Result<Option<Vec<Record>>, ()> {
    let name = ctx.zone.name_of(ctx.sites[site_id.index()].name);
    let Some(s) = fs.as_mut() else {
        return Ok(resolver.resolve(ctx.zone, name, qtype, week, now_s));
    };
    let qtag = match qtype {
        RecordType::A => "A",
        RecordType::Aaaa => "AAAA",
    };
    let mut attempt = 0u32;
    loop {
        let fault =
            s.faults.injector.dns_fault(ctx.vantage_name, site_id.0, qtag, week, salt, attempt);
        match resolver.resolve_faulted(ctx.zone, name, qtype, week, now_s, fault.map(dns_error_of))
        {
            Ok(answer) => {
                if attempt > 0 {
                    ipv6web_obs::inc("faults.probe.recovered");
                }
                return Ok(answer);
            }
            Err(err) => {
                let cost = match err {
                    DnsError::Timeout => s.faults.retry.timeout_ms,
                    DnsError::ServFail | DnsError::Truncated => DNS_FAIL_COST_MS,
                };
                if !s.try_again(attempt, cost) {
                    return Err(());
                }
                attempt += 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::disturbance::{DisturbanceConfig, Disturbances};
    use ipv6web_faults::{DnsDisruption, FaultPlan, HttpDisruption, LinkFlap, XlatOutage};
    use ipv6web_topology::{generate as gen_topo, AsId, Tier, TopologyConfig};
    use ipv6web_web::{build_zone, population, PopulationConfig};

    struct World {
        topo: ipv6web_topology::Topology,
        sites: Vec<Site>,
        zone: ipv6web_dns::ZoneDb,
        table_v4: BgpTable,
        table_v6: BgpTable,
        disturbances: Disturbances,
        vantage: AsId,
    }

    fn world() -> World {
        let topo = gen_topo(&TopologyConfig::test_small(), 21);
        let (sites, names) = population::generate(&PopulationConfig::test_small(52), &topo, 21);
        let zone = build_zone(&topo, &sites, names);
        let vantage =
            topo.nodes().iter().find(|n| n.tier == Tier::Access && n.is_dual_stack()).unwrap().id;
        let mut dests: Vec<AsId> = sites.iter().map(|s| s.v4_as).collect();
        dests.extend(sites.iter().filter_map(|s| s.v6.as_ref().map(|v| v.dest_as)));
        dests.sort();
        dests.dedup();
        let table_v4 = BgpTable::build(&topo, vantage, Family::V4, &dests);
        let table_v6 = BgpTable::build(&topo, vantage, Family::V6, &dests);
        let disturbances = Disturbances::generate(&DisturbanceConfig::none(), sites.len(), 52, 21);
        World { topo, sites, zone, table_v4, table_v6, disturbances, vantage }
    }

    fn ctx<'a>(w: &'a World) -> ProbeContext<'a> {
        let _ = w.vantage;
        ProbeContext {
            topo: &w.topo,
            sites: &w.sites,
            zone: &w.zone,
            table_v4: &w.table_v4,
            table_v6: &w.table_v6,
            disturbances: &w.disturbances,
            tcp: TcpConfig::paper(),
            ci_rule: RelativeCiRule::paper(),
            identity_threshold: 0.06,
            round_noise_sigma: 0.08,
            seed: 99,
            vantage_name: "TestVP",
            white_listed: false,
            v6_epoch: None,
            faults: None,
            stack: ClientStack::DualStack,
            xlat: None,
        }
    }

    fn find_site(w: &World, pred: impl Fn(&Site) -> bool) -> SiteId {
        w.sites.iter().find(|s| pred(s)).map(|s| s.id).expect("site matching predicate")
    }

    #[test]
    fn v4_only_site_stops_at_dns() {
        let w = world();
        let c = ctx(&w);
        let mut r = Resolver::new();
        let sid = find_site(&w, |s| s.v6.is_none());
        assert_eq!(probe_site(&c, &mut r, sid, 50, 0, false), ProbeOutcome::V4Only);
    }

    #[test]
    fn dual_site_before_publication_week_is_v4_only() {
        let w = world();
        let c = ctx(&w);
        let mut r = Resolver::new();
        // force a site with a late publication week
        let Some(site) = w.sites.iter().find(|s| s.v6.as_ref().is_some_and(|v| v.from_week > 5))
        else {
            return; // population happened to publish everything early; fine
        };
        assert_eq!(
            probe_site(&c, &mut r, site.id, site.v6.as_ref().unwrap().from_week - 1, 0, false),
            ProbeOutcome::V4Only
        );
    }

    #[test]
    fn healthy_dual_site_measures_both_families() {
        let w = world();
        let c = ctx(&w);
        let mut r = Resolver::new();
        let sid = find_site(&w, |s| {
            s.v6.as_ref().is_some_and(|v| v.from_week == 0)
                && pages_identical(s.page_bytes_v4, s.page_bytes_v6, 0.06)
        });
        match probe_site(&c, &mut r, sid, 50, 0, false) {
            ProbeOutcome::Measured { v4, v6 } => {
                assert!(v4.speed_kbps > 1.0 && v4.speed_kbps < 1000.0, "{}", v4.speed_kbps);
                assert!(v6.speed_kbps > 1.0 && v6.speed_kbps < 1000.0, "{}", v6.speed_kbps);
                assert!(v4.downloads >= 3, "min samples enforced");
                assert_eq!(v4.week, 50);
            }
            other => panic!("expected Measured, got {other:?}"),
        }
    }

    #[test]
    fn different_content_site_rejected() {
        let w = world();
        let c = ctx(&w);
        let mut r = Resolver::new();
        let Some(site) = w.sites.iter().find(|s| {
            s.v6.as_ref().is_some_and(|v| v.from_week == 0)
                && !pages_identical(s.page_bytes_v4, s.page_bytes_v6, 0.06)
        }) else {
            return; // none generated under this seed
        };
        assert_eq!(probe_site(&c, &mut r, site.id, 50, 0, false), ProbeOutcome::DifferentContent);
    }

    #[test]
    fn probe_is_deterministic() {
        let w = world();
        let c = ctx(&w);
        let sid = find_site(&w, |s| s.v6.as_ref().is_some_and(|v| v.from_week == 0));
        let mut r1 = Resolver::new();
        let mut r2 = Resolver::new();
        assert_eq!(
            probe_site(&c, &mut r1, sid, 40, 0, false),
            probe_site(&c, &mut r2, sid, 40, 0, false)
        );
    }

    #[test]
    fn poor_v6_server_shows_in_measurement() {
        let w = world();
        let c = ctx(&w);
        let mut r = Resolver::new();
        let Some(site) = w.sites.iter().find(|s| {
            s.v6.as_ref().is_some_and(|v| v.from_week == 0 && !v.via_6to4)
                && s.server.v6_service_factor < 0.6
                && s.same_location() == Some(true)
                && pages_identical(s.page_bytes_v4, s.page_bytes_v6, 0.06)
        }) else {
            return;
        };
        if let ProbeOutcome::Measured { v4, v6 } = probe_site(&c, &mut r, site.id, 50, 0, false) {
            assert!(
                v6.speed_kbps < v4.speed_kbps,
                "poor v6 server must measure slower (v4 {} vs v6 {})",
                v4.speed_kbps,
                v6.speed_kbps
            );
        }
    }

    #[test]
    fn ipv6_day_mode_lifts_server_penalty() {
        let w = world();
        let c = ctx(&w);
        let Some(site) = w.sites.iter().find(|s| {
            s.v6.as_ref().is_some_and(|v| v.from_week == 0)
                && s.server.v6_service_factor < 0.6
                && s.same_location() == Some(true)
                && pages_identical(s.page_bytes_v4, s.page_bytes_v6, 0.06)
        }) else {
            return;
        };
        let mut r1 = Resolver::new();
        let normal = probe_site(&c, &mut r1, site.id, 43, 0, false);
        let mut r2 = Resolver::new();
        let day = probe_site(&c, &mut r2, site.id, 43, 0, true);
        if let (ProbeOutcome::Measured { v6: n6, .. }, ProbeOutcome::Measured { v6: d6, .. }) =
            (normal, day)
        {
            assert!(d6.speed_kbps > n6.speed_kbps, "day mode must lift the penalty");
        }
    }

    #[test]
    fn whitelist_gated_site_needs_whitelisted_vantage() {
        let w = world();
        let c = ctx(&w);
        // force a synthetic whitelist-only dual site
        let Some(site) = w
            .sites
            .iter()
            .find(|s| s.v6.as_ref().is_some_and(|v| v.from_week == 0 && v.whitelist_only))
        else {
            // population may not have produced one under this seed; craft
            // the check against any dual site by flipping the context flag
            let sid = find_site(&w, |s| s.v6.as_ref().is_some_and(|v| v.from_week == 0));
            let mut r = Resolver::new();
            let c_wl = ProbeContext { white_listed: true, ..c };
            // a non-gated site behaves identically either way
            assert_eq!(
                probe_site(&c, &mut Resolver::new(), sid, 50, 0, false),
                probe_site(&c_wl, &mut r, sid, 50, 0, false)
            );
            return;
        };
        let mut r1 = Resolver::new();
        assert_eq!(
            probe_site(&c, &mut r1, site.id, 50, 0, false),
            ProbeOutcome::V4Only,
            "non-white-listed vantage must not see the AAAA service"
        );
        let c_wl = ProbeContext { white_listed: true, ..c };
        let mut r2 = Resolver::new();
        assert!(
            !matches!(probe_site(&c_wl, &mut r2, site.id, 50, 0, false), ProbeOutcome::V4Only),
            "white-listed vantage proceeds past DNS"
        );
    }

    #[test]
    fn unknown_name_nxdomain() {
        let w = world();
        let c = ctx(&w);
        let mut r = Resolver::new();
        // site id beyond population has no zone entry — simulate by a
        // record-less zone that still knows the interned names.
        let empty = ipv6web_dns::ZoneDb::with_names(w.zone.names().clone());
        let c2 = ProbeContext { zone: &empty, ..c };
        assert_eq!(probe_site(&c2, &mut r, SiteId(0), 10, 0, false), ProbeOutcome::NxDomain);
    }

    // ---- fault injection --------------------------------------------------

    #[test]
    fn zero_probability_plan_is_bit_identical_to_no_faults() {
        let w = world();
        let c = ctx(&w);
        let mut plan = FaultPlan::default();
        plan.dns_faults.push(DnsDisruption {
            kind: DnsFaultKind::ServFail,
            prob: 0.0,
            from_week: 0,
            weeks: 52,
        });
        plan.http_faults.push(HttpDisruption {
            kind: HttpFaultKind::Reset,
            prob: 0.0,
            stall_ms: 0.0,
            from_week: 0,
            weeks: 52,
        });
        plan.xlat_outages.push(XlatOutage { gateway_frac: 0.0, from_week: 0, weeks: 52 });
        let injector = FaultInjector::new(plan, c.seed);
        let pf =
            ProbeFaults { injector: &injector, retry: RetryPolicy::paper(), v6_epochs: vec![] };
        let c_faulted = ProbeContext { faults: Some(&pf), ..c };
        for sid in w.sites.iter().take(30).map(|s| s.id) {
            let mut r1 = Resolver::new();
            let mut r2 = Resolver::new();
            assert_eq!(
                probe_site(&c, &mut r1, sid, 50, 0, false),
                probe_site(&c_faulted, &mut r2, sid, 50, 0, false),
                "zero-probability faults must not perturb the probe stream"
            );
        }
    }

    /// Owned tables/wiring for a NAT64-enabled vantage: the v6 table also
    /// carries routes to the gateway ASes, and each gateway owns a v4 table
    /// toward every site.
    struct XlatFixture {
        v6_table: BgpTable,
        wiring: ipv6web_xlat::XlatWiring,
        pref: Vec<usize>,
        clat_ms: f64,
    }

    fn xlat_fixture(w: &World) -> XlatFixture {
        let cfg = ipv6web_xlat::XlatConfig { gateways: 2, ..Default::default() };
        let gateways = ipv6web_xlat::place_gateways(&w.topo, 21, cfg.gateways);
        assert_eq!(gateways.len(), 2, "test topology must offer two gateway sites");
        let costs = ipv6web_xlat::gateway_costs(&cfg, 21, gateways.len());
        let mut dests: Vec<AsId> = w.sites.iter().map(|s| s.v4_as).collect();
        dests.extend(w.sites.iter().filter_map(|s| s.v6.as_ref().map(|v| v.dest_as)));
        dests.extend(gateways.iter().copied());
        dests.sort();
        dests.dedup();
        let v6_table = BgpTable::build(&w.topo, w.vantage, Family::V6, &dests);
        let tables =
            gateways.iter().map(|&g| BgpTable::build(&w.topo, g, Family::V4, &dests)).collect();
        let pref = (0..gateways.len()).collect();
        XlatFixture {
            v6_table,
            wiring: ipv6web_xlat::XlatWiring { gateways, costs, tables },
            pref,
            clat_ms: cfg.clat_ms,
        }
    }

    fn xlat_ctx<'a>(w: &'a World, f: &'a XlatFixture, stack: ClientStack) -> ProbeContext<'a> {
        ProbeContext {
            table_v6: &f.v6_table,
            stack,
            xlat: Some(ProbeXlat { wiring: &f.wiring, pref: &f.pref, clat_ms: f.clat_ms }),
            ..ctx(w)
        }
    }

    fn healthy_dual_site(w: &World) -> SiteId {
        find_site(w, |s| {
            s.v6.as_ref().is_some_and(|v| v.from_week == 0)
                && pages_identical(s.page_bytes_v4, s.page_bytes_v6, 0.06)
        })
    }

    #[test]
    fn v6_only_vantage_measures_dual_site_through_translator() {
        let w = world();
        let f = xlat_fixture(&w);
        let sid = healthy_dual_site(&w);
        let mut rd = Resolver::new();
        let native = match probe_site(&ctx(&w), &mut rd, sid, 50, 0, false) {
            ProbeOutcome::Measured { v4, .. } => v4,
            other => panic!("expected native Measured, got {other:?}"),
        };
        for stack in [ClientStack::V6Only, ClientStack::V6OnlyClat] {
            let c = xlat_ctx(&w, &f, stack);
            let mut r = Resolver::dns64();
            match probe_site(&c, &mut r, sid, 50, 0, false) {
                ProbeOutcome::Measured { v4, v6 } => {
                    assert!(v6.speed_kbps > 1.0, "native v6 leg still measured");
                    assert!(
                        v4.speed_kbps < native.speed_kbps,
                        "{stack}: the stateful translator must cost throughput \
                         (translated {} vs native {})",
                        v4.speed_kbps,
                        native.speed_kbps
                    );
                }
                other => panic!("{stack}: expected Measured, got {other:?}"),
            }
        }
    }

    #[test]
    fn translator_only_site_is_v4_only_on_v6_only_host() {
        let w = world();
        let f = xlat_fixture(&w);
        let c = xlat_ctx(&w, &f, ClientStack::V6Only);
        let mut r = Resolver::dns64();
        let sid = find_site(&w, |s| s.v6.is_none());
        // DNS64 synthesizes AAAA from the A records, but every one of them
        // is a translator address: classified v4-only, like a dual host.
        assert_eq!(probe_site(&c, &mut r, sid, 50, 0, false), ProbeOutcome::V4Only);
    }

    #[test]
    fn v6_only_host_without_xlat_plane_is_unroutable_v4() {
        let w = world();
        let c = ProbeContext { stack: ClientStack::V6Only, ..ctx(&w) };
        let mut r = Resolver::dns64();
        let sid = healthy_dual_site(&w);
        assert_eq!(probe_site(&c, &mut r, sid, 50, 0, false), ProbeOutcome::Unroutable(Family::V4));
    }

    #[test]
    fn total_gateway_outage_blackholes_the_translated_slot() {
        let w = world();
        let f = xlat_fixture(&w);
        let mut plan = FaultPlan::default();
        plan.xlat_outages.push(XlatOutage { gateway_frac: 1.0, from_week: 40, weeks: 20 });
        let injector = FaultInjector::new(plan, 99);
        let pf =
            ProbeFaults { injector: &injector, retry: RetryPolicy::paper(), v6_epochs: vec![] };
        let base = xlat_ctx(&w, &f, ClientStack::V6Only);
        let c = ProbeContext { faults: Some(&pf), ..base };
        let sid = healthy_dual_site(&w);
        let mut r = Resolver::dns64();
        assert_eq!(
            probe_site(&c, &mut r, sid, 50, 0, false),
            ProbeOutcome::TimedOut(Family::V4),
            "every gateway down inside the window black-holes the v4 slot"
        );
        let mut r = Resolver::dns64();
        match probe_site(&c, &mut r, sid, 10, 0, false) {
            ProbeOutcome::Measured { .. } => {}
            other => panic!("outside the window the translator recovers, got {other:?}"),
        }
    }

    #[test]
    fn certain_dns_fault_abandons_probe() {
        let w = world();
        let c = ctx(&w);
        let mut plan = FaultPlan::default();
        plan.dns_faults.push(DnsDisruption {
            kind: DnsFaultKind::Timeout,
            prob: 1.0,
            from_week: 0,
            weeks: 52,
        });
        let injector = FaultInjector::new(plan, c.seed);
        let pf =
            ProbeFaults { injector: &injector, retry: RetryPolicy::paper(), v6_epochs: vec![] };
        let c_faulted = ProbeContext { faults: Some(&pf), ..c };
        let mut r = Resolver::new();
        assert_eq!(
            probe_site(&c_faulted, &mut r, SiteId(0), 10, 0, false),
            ProbeOutcome::DnsFailure
        );
    }

    #[test]
    fn certain_truncation_yields_malformed() {
        let w = world();
        let c = ctx(&w);
        let mut plan = FaultPlan::default();
        plan.http_faults.push(HttpDisruption {
            kind: HttpFaultKind::Truncate,
            prob: 1.0,
            stall_ms: 0.0,
            from_week: 0,
            weeks: 52,
        });
        let injector = FaultInjector::new(plan, c.seed);
        let pf =
            ProbeFaults { injector: &injector, retry: RetryPolicy::paper(), v6_epochs: vec![] };
        let c_faulted = ProbeContext { faults: Some(&pf), ..c };
        let sid = find_site(&w, |s| s.v6.as_ref().is_some_and(|v| v.from_week == 0));
        let mut r = Resolver::new();
        assert_eq!(probe_site(&c_faulted, &mut r, sid, 50, 0, false), ProbeOutcome::Malformed);
    }

    #[test]
    fn certain_reset_times_out_after_retries() {
        let w = world();
        let c = ctx(&w);
        let mut plan = FaultPlan::default();
        plan.http_faults.push(HttpDisruption {
            kind: HttpFaultKind::Reset,
            prob: 1.0,
            stall_ms: 0.0,
            from_week: 0,
            weeks: 52,
        });
        let injector = FaultInjector::new(plan, c.seed);
        let pf =
            ProbeFaults { injector: &injector, retry: RetryPolicy::paper(), v6_epochs: vec![] };
        let c_faulted = ProbeContext { faults: Some(&pf), ..c };
        let sid = find_site(&w, |s| s.v6.as_ref().is_some_and(|v| v.from_week == 0));
        let mut r = Resolver::new();
        assert_eq!(
            probe_site(&c_faulted, &mut r, sid, 50, 0, false),
            ProbeOutcome::TimedOut(Family::V4)
        );
    }

    #[test]
    fn full_link_flap_black_holes_family() {
        let w = world();
        let c = ctx(&w);
        let mut plan = FaultPlan::default();
        plan.link_flaps.push(LinkFlap {
            family: Family::V6,
            from_week: 50,
            weeks: 1,
            edge_frac: 1.0,
        });
        let injector = FaultInjector::new(plan, c.seed);
        let pf =
            ProbeFaults { injector: &injector, retry: RetryPolicy::paper(), v6_epochs: vec![] };
        let c_faulted = ProbeContext { faults: Some(&pf), ..c };
        let sid = find_site(&w, |s| {
            s.v6.as_ref().is_some_and(|v| v.from_week == 0)
                && pages_identical(s.page_bytes_v4, s.page_bytes_v6, 0.06)
        });
        let mut r = Resolver::new();
        match probe_site(&c_faulted, &mut r, sid, 50, 0, false) {
            // intra-AS v6 (empty edge list) cannot flap; anything else must
            ProbeOutcome::TimedOut(Family::V6) | ProbeOutcome::Measured { .. } => {}
            other => panic!("expected v6 timeout or local measure, got {other:?}"),
        }
    }

    #[test]
    fn faulted_probe_is_deterministic() {
        let w = world();
        let c = ctx(&w);
        let plan = FaultPlan::demo(52);
        let injector = FaultInjector::new(plan, c.seed);
        let pf =
            ProbeFaults { injector: &injector, retry: injector.plan().retry, v6_epochs: vec![] };
        let c_faulted = ProbeContext { faults: Some(&pf), ..c };
        for sid in w.sites.iter().take(20).map(|s| s.id) {
            let mut r1 = Resolver::new();
            let mut r2 = Resolver::new();
            assert_eq!(
                probe_site(&c_faulted, &mut r1, sid, 26, 0, false),
                probe_site(&c_faulted, &mut r2, sid, 26, 0, false)
            );
        }
    }
}
