//! Monitoring one site in one round (the per-thread unit of work).

use crate::db::PerfSample;
use crate::disturbance::Disturbances;
use ipv6web_bgp::BgpTable;
use ipv6web_dns::{RecordType, Resolver, ZoneDb};
use ipv6web_netsim::{download_time, DataPlane, PathMetrics, TcpConfig};
use ipv6web_stats::ci::SamplingDecision;
use ipv6web_stats::{derive_rng, lognormal, mean_ci, RelativeCiRule, StudentT, Welford};
use ipv6web_topology::{Family, Topology};
use ipv6web_web::{
    build_request, build_response_header, pages_identical, parse_response_len, Site, SiteId,
};
use rand::Rng;

/// Everything a probe needs, shared read-only across worker threads.
#[derive(Clone, Copy)]
pub struct ProbeContext<'a> {
    /// The topology (for the data plane).
    pub topo: &'a Topology,
    /// The site population, indexed by `SiteId`.
    pub sites: &'a [Site],
    /// Authoritative DNS.
    pub zone: &'a ZoneDb,
    /// The vantage point's IPv4 BGP table.
    pub table_v4: &'a BgpTable,
    /// The vantage point's IPv6 BGP table.
    pub table_v6: &'a BgpTable,
    /// Injected performance disturbances.
    pub disturbances: &'a Disturbances,
    /// TCP model parameters.
    pub tcp: TcpConfig,
    /// The repeat-until-confident rule (paper: 95% CI within 10%).
    pub ci_rule: RelativeCiRule,
    /// Page identity threshold (paper: 0.06).
    pub identity_threshold: f64,
    /// σ of the cross-round congestion factor (log-normal), applied to both
    /// families alike.
    pub round_noise_sigma: f64,
    /// Campaign seed.
    pub seed: u64,
    /// Vantage point name (part of the RNG derivation).
    pub vantage_name: &'a str,
    /// Whether this vantage point's resolver is white-listed (Table 1's
    /// W-L column): non-white-listed monitors never receive AAAA answers
    /// from white-list-gated sites (the Google model).
    pub white_listed: bool,
    /// Mid-campaign IPv6 route change: from the given week onward, v6
    /// routes come from this table instead of `table_v6`.
    pub v6_epoch: Option<(u32, &'a BgpTable)>,
}

/// What one probe of one site produced.
#[derive(Debug, Clone, PartialEq)]
pub enum ProbeOutcome {
    /// The name does not resolve at all.
    NxDomain,
    /// A record only — the overwhelmingly common case in 2011.
    V4Only,
    /// Dual-stack in DNS but no BGP route in one family from here.
    Unroutable(Family),
    /// Dual-stack but the two pages differ beyond the identity threshold.
    DifferentContent,
    /// Both families measured to confidence.
    Measured {
        /// Accepted IPv4 sample.
        v4: PerfSample,
        /// Accepted IPv6 sample.
        v6: PerfSample,
    },
    /// The sampling cap was reached without confidence in `0`.
    Unconfident(Family),
}

/// Runs the Fig 2 pipeline for `site` at `week`.
///
/// `salt` distinguishes multiple rounds within the same week (the World
/// IPv6 Day 30-minute cadence); weekly rounds pass 0. `ipv6_day_mode`
/// lifts server-side IPv6 penalties (participants had made their
/// end-systems "fully IPv6 qualified") — used by the World IPv6 Day rounds
/// feeding Tables 10 and 12.
pub fn probe_site(
    ctx: &ProbeContext<'_>,
    resolver: &mut Resolver,
    site_id: SiteId,
    week: u32,
    salt: u32,
    ipv6_day_mode: bool,
) -> ProbeOutcome {
    ipv6web_obs::inc("monitor.probes");
    let site = &ctx.sites[site_id.index()];
    let mut rng = derive_rng(
        ctx.seed,
        &format!("{}:probe:{}:{}:{}", ctx.vantage_name, week, salt, site_id.0),
    );
    let now_s = week as u64 * 604_800 + rng.gen_range(0..600_000);

    // --- phase 1: DNS ------------------------------------------------------
    let Some(a) = resolver.resolve(ctx.zone, &site.name, RecordType::A, week, now_s) else {
        ipv6web_obs::inc("monitor.outcome.nxdomain");
        return ProbeOutcome::NxDomain;
    };
    let aaaa =
        resolver.resolve(ctx.zone, &site.name, RecordType::Aaaa, week, now_s).unwrap_or_default();
    if a.is_empty() || aaaa.is_empty() {
        ipv6web_obs::inc("monitor.outcome.v4_only");
        return ProbeOutcome::V4Only;
    }
    if site.v6.as_ref().is_some_and(|v| v.whitelist_only) && !ctx.white_listed {
        // the authority answers AAAA only to certified resolvers
        ipv6web_obs::inc("monitor.whitelist_denials");
        ipv6web_obs::inc("monitor.outcome.v4_only");
        return ProbeOutcome::V4Only;
    }

    // --- phase 2: routability + one download per family --------------------
    let Some(route4) = ctx.table_v4.route(site.v4_as) else {
        ipv6web_obs::inc("monitor.outcome.unroutable");
        return ProbeOutcome::Unroutable(Family::V4);
    };
    let v6_dest = site.v6.as_ref().expect("AAAA implies v6 presence").dest_as;
    let v6_table = match ctx.v6_epoch {
        Some((epoch_week, late)) if week >= epoch_week => late,
        _ => ctx.table_v6,
    };
    let Some(route6) = v6_table.route(v6_dest) else {
        ipv6web_obs::inc("monitor.outcome.unroutable");
        return ProbeOutcome::Unroutable(Family::V6);
    };

    // The HTTP exchange, once per family. Only `Content-Length` feeds the
    // identity rule, so the simulated server sends headers without
    // materializing the (deterministic) body — byte-identical decisions at
    // a fraction of the cost.
    let req = build_request(&site.name);
    debug_assert!(req.starts_with(b"GET / HTTP/1.1"));
    let resp4 = build_response_header(site.page_bytes(Family::V4) as usize);
    let resp6 = build_response_header(site.page_bytes(Family::V6) as usize);
    let (_, len4) = parse_response_len(&resp4).expect("well-formed response");
    let (_, len6) = parse_response_len(&resp6).expect("well-formed response");
    if !pages_identical(len4 as u64, len6 as u64, ctx.identity_threshold) {
        ipv6web_obs::inc("monitor.outcome.different_content");
        return ProbeOutcome::DifferentContent;
    }

    // --- phase 3: confidence-driven performance sampling --------------------
    let dp = DataPlane::new(ctx.topo);
    let shared_round_factor = lognormal(&mut rng, 1.0, ctx.round_noise_sigma);
    let disturbance_factor = ctx.disturbances.factor(site_id, week);

    let mut measure = |family: Family, metrics: PathMetrics| -> Option<PerfSample> {
        let bytes = site.page_bytes(family);
        let v6_factor =
            if ipv6_day_mode && family == Family::V6 { 1.0 } else { site.server.v6_service_factor };
        // A CDN-fronted IPv4 presence is served by the CDN's edge servers,
        // not the origin: fast, high-capacity, low think time. That is the
        // whole value proposition the paper's Table 6 quantifies.
        let v4_via_cdn = ctx.topo.node(site.v4_as).tier == ipv6web_topology::Tier::Cdn;
        let rate_cap = match family {
            Family::V4 if v4_via_cdn => 8_000.0,
            Family::V4 => site.server.rate_cap_kbps,
            Family::V6 => site.server.rate_cap_kbps * v6_factor,
        };
        let think_ms = match family {
            Family::V4 if v4_via_cdn => 5.0,
            Family::V4 => site.server.think_ms,
            Family::V6 => site.server.think_ms / v6_factor,
        };
        let extra_rtt = match family {
            Family::V4 => 0.0,
            Family::V6 => site.v6.as_ref().map_or(0.0, |v| 2.0 * v.extra_v6_rtt_ms),
        };
        let eff = PathMetrics {
            bottleneck_kbps: metrics.bottleneck_kbps.min(rate_cap),
            rtt_ms: metrics.rtt_ms + extra_rtt,
            ..metrics
        };
        let mut times = Welford::new();
        loop {
            // "each after proper resetting to avoid local caching effects"
            resolver.flush();
            let out = download_time(&mut rng, bytes, &eff, think_ms, &ctx.tcp);
            ipv6web_obs::inc("monitor.downloads");
            times.push(out.time_s);
            match ctx.ci_rule.decide(&times) {
                SamplingDecision::Continue => {
                    // every extra pass is a CI-rule repeat
                    ipv6web_obs::inc("monitor.ci_repeats");
                    continue;
                }
                SamplingDecision::GiveUp => {
                    ipv6web_obs::inc("monitor.ci_giveups");
                    return None;
                }
                SamplingDecision::Accept => {
                    ipv6web_obs::observe("monitor.downloads_per_sample", times.count());
                    let ci = mean_ci(&times, StudentT::P95);
                    debug_assert!(
                        ci.relative_half_width() <= ctx.ci_rule.relative_tolerance + 1e-9
                    );
                    let speed =
                        bytes as f64 / 1024.0 / ci.mean * shared_round_factor * disturbance_factor;
                    return Some(PerfSample {
                        week,
                        speed_kbps: speed,
                        downloads: times.count() as u32,
                    });
                }
            }
        }
    };

    // "first for IPv4 and then IPv6"
    let m4 = dp.metrics(route4, Family::V4);
    let Some(v4) = measure(Family::V4, m4) else {
        ipv6web_obs::inc("monitor.outcome.unconfident");
        return ProbeOutcome::Unconfident(Family::V4);
    };
    let m6 = dp.metrics(route6, Family::V6);
    let Some(v6) = measure(Family::V6, m6) else {
        ipv6web_obs::inc("monitor.outcome.unconfident");
        return ProbeOutcome::Unconfident(Family::V6);
    };
    ipv6web_obs::inc("monitor.outcome.measured");
    ProbeOutcome::Measured { v4, v6 }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::disturbance::{DisturbanceConfig, Disturbances};
    use ipv6web_topology::{generate as gen_topo, AsId, Tier, TopologyConfig};
    use ipv6web_web::{build_zone, population, PopulationConfig};

    struct World {
        topo: ipv6web_topology::Topology,
        sites: Vec<Site>,
        zone: ipv6web_dns::ZoneDb,
        table_v4: BgpTable,
        table_v6: BgpTable,
        disturbances: Disturbances,
        vantage: AsId,
    }

    fn world() -> World {
        let topo = gen_topo(&TopologyConfig::test_small(), 21);
        let sites = population::generate(&PopulationConfig::test_small(52), &topo, 21);
        let zone = build_zone(&topo, &sites);
        let vantage =
            topo.nodes().iter().find(|n| n.tier == Tier::Access && n.is_dual_stack()).unwrap().id;
        let mut dests: Vec<AsId> = sites.iter().map(|s| s.v4_as).collect();
        dests.extend(sites.iter().filter_map(|s| s.v6.as_ref().map(|v| v.dest_as)));
        dests.sort();
        dests.dedup();
        let table_v4 = BgpTable::build(&topo, vantage, Family::V4, &dests);
        let table_v6 = BgpTable::build(&topo, vantage, Family::V6, &dests);
        let disturbances = Disturbances::generate(&DisturbanceConfig::none(), sites.len(), 52, 21);
        World { topo, sites, zone, table_v4, table_v6, disturbances, vantage }
    }

    fn ctx<'a>(w: &'a World) -> ProbeContext<'a> {
        let _ = w.vantage;
        ProbeContext {
            topo: &w.topo,
            sites: &w.sites,
            zone: &w.zone,
            table_v4: &w.table_v4,
            table_v6: &w.table_v6,
            disturbances: &w.disturbances,
            tcp: TcpConfig::paper(),
            ci_rule: RelativeCiRule::paper(),
            identity_threshold: 0.06,
            round_noise_sigma: 0.08,
            seed: 99,
            vantage_name: "TestVP",
            white_listed: false,
            v6_epoch: None,
        }
    }

    fn find_site(w: &World, pred: impl Fn(&Site) -> bool) -> SiteId {
        w.sites.iter().find(|s| pred(s)).map(|s| s.id).expect("site matching predicate")
    }

    #[test]
    fn v4_only_site_stops_at_dns() {
        let w = world();
        let c = ctx(&w);
        let mut r = Resolver::new();
        let sid = find_site(&w, |s| s.v6.is_none());
        assert_eq!(probe_site(&c, &mut r, sid, 50, 0, false), ProbeOutcome::V4Only);
    }

    #[test]
    fn dual_site_before_publication_week_is_v4_only() {
        let w = world();
        let c = ctx(&w);
        let mut r = Resolver::new();
        // force a site with a late publication week
        let Some(site) = w.sites.iter().find(|s| s.v6.as_ref().is_some_and(|v| v.from_week > 5))
        else {
            return; // population happened to publish everything early; fine
        };
        assert_eq!(
            probe_site(&c, &mut r, site.id, site.v6.as_ref().unwrap().from_week - 1, 0, false),
            ProbeOutcome::V4Only
        );
    }

    #[test]
    fn healthy_dual_site_measures_both_families() {
        let w = world();
        let c = ctx(&w);
        let mut r = Resolver::new();
        let sid = find_site(&w, |s| {
            s.v6.as_ref().is_some_and(|v| v.from_week == 0)
                && pages_identical(s.page_bytes_v4, s.page_bytes_v6, 0.06)
        });
        match probe_site(&c, &mut r, sid, 50, 0, false) {
            ProbeOutcome::Measured { v4, v6 } => {
                assert!(v4.speed_kbps > 1.0 && v4.speed_kbps < 1000.0, "{}", v4.speed_kbps);
                assert!(v6.speed_kbps > 1.0 && v6.speed_kbps < 1000.0, "{}", v6.speed_kbps);
                assert!(v4.downloads >= 3, "min samples enforced");
                assert_eq!(v4.week, 50);
            }
            other => panic!("expected Measured, got {other:?}"),
        }
    }

    #[test]
    fn different_content_site_rejected() {
        let w = world();
        let c = ctx(&w);
        let mut r = Resolver::new();
        let Some(site) = w.sites.iter().find(|s| {
            s.v6.as_ref().is_some_and(|v| v.from_week == 0)
                && !pages_identical(s.page_bytes_v4, s.page_bytes_v6, 0.06)
        }) else {
            return; // none generated under this seed
        };
        assert_eq!(probe_site(&c, &mut r, site.id, 50, 0, false), ProbeOutcome::DifferentContent);
    }

    #[test]
    fn probe_is_deterministic() {
        let w = world();
        let c = ctx(&w);
        let sid = find_site(&w, |s| s.v6.as_ref().is_some_and(|v| v.from_week == 0));
        let mut r1 = Resolver::new();
        let mut r2 = Resolver::new();
        assert_eq!(
            probe_site(&c, &mut r1, sid, 40, 0, false),
            probe_site(&c, &mut r2, sid, 40, 0, false)
        );
    }

    #[test]
    fn poor_v6_server_shows_in_measurement() {
        let w = world();
        let c = ctx(&w);
        let mut r = Resolver::new();
        let Some(site) = w.sites.iter().find(|s| {
            s.v6.as_ref().is_some_and(|v| v.from_week == 0 && !v.via_6to4)
                && s.server.v6_service_factor < 0.6
                && s.same_location() == Some(true)
                && pages_identical(s.page_bytes_v4, s.page_bytes_v6, 0.06)
        }) else {
            return;
        };
        if let ProbeOutcome::Measured { v4, v6 } = probe_site(&c, &mut r, site.id, 50, 0, false) {
            assert!(
                v6.speed_kbps < v4.speed_kbps,
                "poor v6 server must measure slower (v4 {} vs v6 {})",
                v4.speed_kbps,
                v6.speed_kbps
            );
        }
    }

    #[test]
    fn ipv6_day_mode_lifts_server_penalty() {
        let w = world();
        let c = ctx(&w);
        let Some(site) = w.sites.iter().find(|s| {
            s.v6.as_ref().is_some_and(|v| v.from_week == 0)
                && s.server.v6_service_factor < 0.6
                && s.same_location() == Some(true)
                && pages_identical(s.page_bytes_v4, s.page_bytes_v6, 0.06)
        }) else {
            return;
        };
        let mut r1 = Resolver::new();
        let normal = probe_site(&c, &mut r1, site.id, 43, 0, false);
        let mut r2 = Resolver::new();
        let day = probe_site(&c, &mut r2, site.id, 43, 0, true);
        if let (ProbeOutcome::Measured { v6: n6, .. }, ProbeOutcome::Measured { v6: d6, .. }) =
            (normal, day)
        {
            assert!(d6.speed_kbps > n6.speed_kbps, "day mode must lift the penalty");
        }
    }

    #[test]
    fn whitelist_gated_site_needs_whitelisted_vantage() {
        let w = world();
        let c = ctx(&w);
        // force a synthetic whitelist-only dual site
        let Some(site) = w
            .sites
            .iter()
            .find(|s| s.v6.as_ref().is_some_and(|v| v.from_week == 0 && v.whitelist_only))
        else {
            // population may not have produced one under this seed; craft
            // the check against any dual site by flipping the context flag
            let sid = find_site(&w, |s| s.v6.as_ref().is_some_and(|v| v.from_week == 0));
            let mut r = Resolver::new();
            let c_wl = ProbeContext { white_listed: true, ..c };
            // a non-gated site behaves identically either way
            assert_eq!(
                probe_site(&c, &mut Resolver::new(), sid, 50, 0, false),
                probe_site(&c_wl, &mut r, sid, 50, 0, false)
            );
            return;
        };
        let mut r1 = Resolver::new();
        assert_eq!(
            probe_site(&c, &mut r1, site.id, 50, 0, false),
            ProbeOutcome::V4Only,
            "non-white-listed vantage must not see the AAAA service"
        );
        let c_wl = ProbeContext { white_listed: true, ..c };
        let mut r2 = Resolver::new();
        assert!(
            !matches!(probe_site(&c_wl, &mut r2, site.id, 50, 0, false), ProbeOutcome::V4Only),
            "white-listed vantage proceeds past DNS"
        );
    }

    #[test]
    fn unknown_name_nxdomain() {
        let w = world();
        let c = ctx(&w);
        let mut r = Resolver::new();
        // site id beyond population has no zone entry — simulate by a site
        // whose name we blank out of the zone: use a fresh empty zone.
        let empty = ipv6web_dns::ZoneDb::new();
        let c2 = ProbeContext { zone: &empty, ..c };
        assert_eq!(probe_site(&c2, &mut r, SiteId(0), 10, 0, false), ProbeOutcome::NxDomain);
    }
}
