//! The paper's monitoring tool (Section 3, Fig 2), reimplemented.
//!
//! Per vantage point and per weekly round, every monitored site goes
//! through the pipeline:
//!
//! 1. **DNS phase** — A and AAAA lookups through a caching resolver (wire
//!    codec exercised end to end). Sites with only an A record update the
//!    reachability tables and stop here.
//! 2. **Accessibility phase** — one main-page download over each family;
//!    byte counts compared with the 6% identity rule. Different content →
//!    recorded and stopped.
//! 3. **Performance phase** — repeated downloads per family, each after
//!    cache resets, until the 95% confidence interval of the download time
//!    is within 10% of the mean (or a cap is hit). The accepted mean speed
//!    becomes that round's sample.
//!
//! Rounds are executed by a pool of up to 25 worker threads (the paper's
//! concurrency bound) over a crossbeam channel; site order is randomized
//! per round to avoid time-of-day bias; every stochastic draw derives from
//! `(seed, vantage, week, site)` so the parallel execution is
//! deterministic regardless of scheduling.
//!
//! [`disturbance`] injects the real-world messiness of Section 5.1:
//! step changes (equipment upgrades, path changes) and steady drifts, which
//! the analysis crate's sanitization then has to catch.

pub mod db;
pub mod disturbance;
pub mod population;
pub mod probe;
pub mod round;
pub mod vantage;

pub use db::{MonitorDb, PerfSample, SiteRecord};
pub use disturbance::{Disturbance, DisturbanceConfig, DisturbanceKind, Disturbances};
pub use population::{PopulationError, VantagePopulation};
pub use probe::{probe_site, ProbeContext, ProbeFaults, ProbeOutcome, ProbeXlat};
pub use round::{
    check_population_stamp, checkpoint_path, population_hash, run_campaign, run_campaign_resumable,
    run_ipv6_day_rounds, validate_checkpoint_dir, CampaignConfig, CampaignError, ConfigError,
    RoundError,
};
pub use vantage::{VantageCountError, VantageKind, VantagePoint};
