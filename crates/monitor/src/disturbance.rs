//! Exogenous performance disturbances (Section 5.1's messiness).
//!
//! Table 3 shows that a sizeable share of sites never reached the study's
//! confidence target because their performance **stepped** up/down during
//! the campaign (path changes, equipment upgrades) or **drifted** steadily.
//! The simulator injects exactly these phenomena so the sanitization
//! pipeline has something real to catch; each disturbance applies a
//! multiplicative factor to a site's measured speed from its onset week.

use ipv6web_stats::{coin, derive_rng};
use ipv6web_web::SiteId;
use rand::Rng;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Kind of injected disturbance.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum DisturbanceKind {
    /// Sharp sustained increase at `week` by `magnitude` (>1).
    StepUp,
    /// Sharp sustained decrease at `week` by `magnitude` (<1).
    StepDown,
    /// Steady multiplicative drift upward: factor `magnitude^(weeks since)`.
    TrendUp,
    /// Steady multiplicative drift downward.
    TrendDown,
}

/// One site's disturbance.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Disturbance {
    /// Kind.
    pub kind: DisturbanceKind,
    /// Onset week.
    pub week: u32,
    /// Step factor or weekly drift ratio, per [`DisturbanceKind`].
    pub magnitude: f64,
    /// Whether the underlying cause was a routing-path change (the paper
    /// could attribute some, not all, transitions to path changes).
    pub path_change: bool,
}

/// Disturbance injection rates.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DisturbanceConfig {
    /// Probability a site suffers a step change during the campaign.
    pub step_prob: f64,
    /// Probability a site drifts steadily.
    pub trend_prob: f64,
    /// Probability a step is attributable to a path change.
    pub path_change_share: f64,
}

impl DisturbanceConfig {
    /// Rates calibrated to Table 3's removal proportions.
    pub fn paper() -> Self {
        DisturbanceConfig { step_prob: 0.035, trend_prob: 0.12, path_change_share: 0.35 }
    }

    /// No disturbances (clean-world ablation).
    pub fn none() -> Self {
        DisturbanceConfig { step_prob: 0.0, trend_prob: 0.0, path_change_share: 0.0 }
    }
}

/// The per-site disturbance assignment.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Disturbances {
    map: HashMap<SiteId, Disturbance>,
}

impl Disturbances {
    /// Draws disturbances for `n_sites` sites over a `total_weeks` campaign.
    pub fn generate(
        config: &DisturbanceConfig,
        n_sites: usize,
        total_weeks: u32,
        seed: u64,
    ) -> Self {
        let mut rng = derive_rng(seed, "disturbances");
        let mut map = HashMap::new();
        for i in 0..n_sites {
            let site = SiteId(i as u32);
            if coin(&mut rng, config.step_prob) {
                let up = coin(&mut rng, 0.5);
                map.insert(
                    site,
                    Disturbance {
                        kind: if up { DisturbanceKind::StepUp } else { DisturbanceKind::StepDown },
                        // step onset away from the very edges so the median
                        // filter has context on both sides
                        week: rng.gen_range(total_weeks / 6..total_weeks * 5 / 6),
                        magnitude: if up {
                            rng.gen_range(1.5..3.0)
                        } else {
                            rng.gen_range(0.3..0.65)
                        },
                        path_change: coin(&mut rng, config.path_change_share),
                    },
                );
            } else if coin(&mut rng, config.trend_prob) {
                let up = coin(&mut rng, 0.5);
                map.insert(
                    site,
                    Disturbance {
                        kind: if up {
                            DisturbanceKind::TrendUp
                        } else {
                            DisturbanceKind::TrendDown
                        },
                        week: 0,
                        magnitude: if up {
                            rng.gen_range(1.012..1.03)
                        } else {
                            rng.gen_range(0.97..0.988)
                        },
                        path_change: false,
                    },
                );
            }
        }
        Disturbances { map }
    }

    /// The disturbance assigned to `site`, if any.
    pub fn get(&self, site: SiteId) -> Option<&Disturbance> {
        self.map.get(&site)
    }

    /// The multiplicative speed factor for `site` at `week`.
    pub fn factor(&self, site: SiteId, week: u32) -> f64 {
        let Some(d) = self.map.get(&site) else {
            return 1.0;
        };
        match d.kind {
            DisturbanceKind::StepUp | DisturbanceKind::StepDown => {
                if week >= d.week {
                    d.magnitude
                } else {
                    1.0
                }
            }
            DisturbanceKind::TrendUp | DisturbanceKind::TrendDown => {
                d.magnitude.powi(week.saturating_sub(d.week) as i32)
            }
        }
    }

    /// Number of disturbed sites.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True when no site is disturbed.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_rates_roughly_match_config() {
        let cfg = DisturbanceConfig { step_prob: 0.1, trend_prob: 0.2, path_change_share: 0.5 };
        let d = Disturbances::generate(&cfg, 10_000, 52, 1);
        // expected: 1000 steps + 0.9*10_000*0.2 = 1800 trends => ~2800
        assert!((2300..3300).contains(&d.len()), "got {}", d.len());
        let steps = (0..10_000u32)
            .filter_map(|i| d.get(SiteId(i)))
            .filter(|x| matches!(x.kind, DisturbanceKind::StepUp | DisturbanceKind::StepDown))
            .count();
        assert!((800..1200).contains(&steps), "steps {steps}");
    }

    #[test]
    fn none_config_is_empty() {
        let d = Disturbances::generate(&DisturbanceConfig::none(), 1000, 52, 2);
        assert!(d.is_empty());
        assert_eq!(d.factor(SiteId(3), 10), 1.0);
    }

    #[test]
    fn step_factor_applies_from_onset() {
        let mut map = HashMap::new();
        map.insert(
            SiteId(1),
            Disturbance {
                kind: DisturbanceKind::StepUp,
                week: 10,
                magnitude: 2.0,
                path_change: true,
            },
        );
        let d = Disturbances { map };
        assert_eq!(d.factor(SiteId(1), 9), 1.0);
        assert_eq!(d.factor(SiteId(1), 10), 2.0);
        assert_eq!(d.factor(SiteId(1), 50), 2.0);
        assert_eq!(d.factor(SiteId(2), 50), 1.0, "undisturbed site");
    }

    #[test]
    fn trend_factor_compounds() {
        let mut map = HashMap::new();
        map.insert(
            SiteId(1),
            Disturbance {
                kind: DisturbanceKind::TrendDown,
                week: 0,
                magnitude: 0.98,
                path_change: false,
            },
        );
        let d = Disturbances { map };
        assert_eq!(d.factor(SiteId(1), 0), 1.0);
        assert!((d.factor(SiteId(1), 10) - 0.98f64.powi(10)).abs() < 1e-12);
        assert!(d.factor(SiteId(1), 40) < d.factor(SiteId(1), 10));
    }

    #[test]
    fn deterministic_generation() {
        let cfg = DisturbanceConfig::paper();
        assert_eq!(
            Disturbances::generate(&cfg, 500, 52, 7),
            Disturbances::generate(&cfg, 500, 52, 7)
        );
    }

    #[test]
    fn magnitudes_in_declared_ranges() {
        let d = Disturbances::generate(&DisturbanceConfig::paper(), 20_000, 52, 3);
        for i in 0..20_000u32 {
            if let Some(x) = d.get(SiteId(i)) {
                match x.kind {
                    DisturbanceKind::StepUp => assert!((1.5..3.0).contains(&x.magnitude)),
                    DisturbanceKind::StepDown => assert!((0.3..0.65).contains(&x.magnitude)),
                    DisturbanceKind::TrendUp => assert!((1.012..1.03).contains(&x.magnitude)),
                    DisturbanceKind::TrendDown => assert!((0.97..0.988).contains(&x.magnitude)),
                }
                if matches!(x.kind, DisturbanceKind::StepUp | DisturbanceKind::StepDown) {
                    assert!((52 / 6..52 * 5 / 6).contains(&x.week));
                }
            }
        }
    }
}
