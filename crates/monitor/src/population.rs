//! Generated vantage populations: hundreds of monitors instead of Table 1's
//! six.
//!
//! "The Blind Men and the Internet" shows conclusions drawn from a handful
//! of vantage points can be artifacts of where you look. A
//! [`VantagePopulation`] is a serde-able spec — count, region mix,
//! academic/commercial split, white-list fraction, client-stack mix — that
//! deterministically samples dual-stack access ASes from the generated
//! topology and turns them into [`VantagePoint`]s. A scenario without a
//! spec keeps the paper's Table 1 six, byte-identically.

use crate::vantage::{VantageKind, VantagePoint};
use ipv6web_stats::derive_rng;
use ipv6web_topology::{AsId, Family, Region, Relationship, Tier, Topology};
use ipv6web_xlat::ClientStack;
use rand::seq::SliceRandom;
use rand::Rng;
use serde::{DeError, Deserialize, Serialize, Value};

/// Spec for a generated vantage population. Every field has a default, so
/// `{"count": 200}` is a complete spec; an absent spec on the scenario
/// means the paper's Table 1 six.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct VantagePopulation {
    /// How many vantage points to generate.
    pub count: usize,
    /// Region mix as `(region, weight)` pairs; empty means every region
    /// with eligible ASes, weighted equally. Weights are relative, not
    /// normalized. A weighted region whose AS pool runs dry falls back to
    /// the remaining regions rather than failing.
    pub regions: Vec<(Region, f64)>,
    /// Fraction of vantage points on academic networks (the rest are
    /// commercial ISPs). Table 1 is 3/6.
    pub academic_share: f64,
    /// Fraction with BGP `AS_PATH` feeds — only these enter the
    /// path-correlated H1/H2 analysis. Table 1 is 4/6; the default keeps
    /// every generated vantage analyzable.
    pub as_path_share: f64,
    /// Fraction white-listed by Google (Table 1: 1/6).
    pub white_list_share: f64,
    /// Client-stack mix as `(stack, weight)` pairs; empty means all
    /// dual-stack. Translating stacks require `xlat.gateways > 0` on the
    /// scenario.
    pub stacks: Vec<(ClientStack, f64)>,
    /// Start weeks are drawn uniformly from the first `max_start_share`
    /// of the campaign (vantage 0 always starts at week 0, like Penn).
    pub max_start_share: f64,
}

impl Default for VantagePopulation {
    fn default() -> Self {
        VantagePopulation {
            count: 100,
            regions: Vec::new(),
            academic_share: 0.5,
            as_path_share: 1.0,
            white_list_share: 0.15,
            stacks: Vec::new(),
            max_start_share: 0.75,
        }
    }
}

impl Deserialize for VantagePopulation {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let d = VantagePopulation::default();
        let share = |name: &str, def: f64| -> Result<f64, DeError> {
            match v.get_field(name) {
                Some(x) => f64::from_value(x),
                None => Ok(def),
            }
        };
        Ok(VantagePopulation {
            count: match v.get_field("count") {
                Some(x) => usize::from_value(x)?,
                None => d.count,
            },
            regions: match v.get_field("regions") {
                Some(x) => Deserialize::from_value(x)?,
                None => d.regions,
            },
            academic_share: share("academic_share", d.academic_share)?,
            as_path_share: share("as_path_share", d.as_path_share)?,
            white_list_share: share("white_list_share", d.white_list_share)?,
            stacks: match v.get_field("stacks") {
                Some(x) => Deserialize::from_value(x)?,
                None => d.stacks,
            },
            max_start_share: share("max_start_share", d.max_start_share)?,
        })
    }

    fn missing_field(_name: &str) -> Result<Self, DeError> {
        Ok(VantagePopulation::default())
    }
}

/// Typed error from [`VantagePopulation::generate`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PopulationError {
    /// The topology has fewer eligible (dual-stack access) ASes than the
    /// requested vantage count.
    InsufficientAses {
        /// The requested population size.
        needed: usize,
        /// How many eligible ASes the topology has.
        found: usize,
    },
}

impl std::fmt::Display for PopulationError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PopulationError::InsufficientAses { needed, found } => write!(
                f,
                "not enough dual-stack access ASes for the vantage population: \
                 {needed} needed, {found} available"
            ),
        }
    }
}

impl std::error::Error for PopulationError {}

impl VantagePopulation {
    /// Structural validation; call before building a world.
    pub fn validate(&self) -> Result<(), String> {
        if self.count == 0 {
            return Err("vantage population count must be at least 1".into());
        }
        let share_ok = |name: &str, x: f64| -> Result<(), String> {
            if !(0.0..=1.0).contains(&x) {
                return Err(format!("{name} must be in [0, 1], got {x}"));
            }
            Ok(())
        };
        share_ok("academic_share", self.academic_share)?;
        share_ok("as_path_share", self.as_path_share)?;
        share_ok("white_list_share", self.white_list_share)?;
        share_ok("max_start_share", self.max_start_share)?;
        let weights_ok = |name: &str, ws: &[f64]| -> Result<(), String> {
            if ws.iter().any(|w| !w.is_finite() || *w < 0.0) {
                return Err(format!("{name} weights must be finite and non-negative"));
            }
            if !ws.is_empty() && ws.iter().sum::<f64>() <= 0.0 {
                return Err(format!("{name} weights must not all be zero"));
            }
            Ok(())
        };
        weights_ok("region", &self.regions.iter().map(|(_, w)| *w).collect::<Vec<_>>())?;
        weights_ok("stack", &self.stacks.iter().map(|(_, w)| *w).collect::<Vec<_>>())?;
        Ok(())
    }

    /// Whether the stack mix can assign a NAT64/CLAT stack (which needs
    /// gateways on the scenario).
    pub fn has_translating_stacks(&self) -> bool {
        self.stacks.iter().any(|(s, w)| *w > 0.0 && s.translates_v4())
    }

    /// Deterministically samples the population from `topo` under the
    /// `derive_rng` discipline (label `"vantage-population"`). Vantage
    /// points live in dual-stack access ASes; within each region, ASes
    /// with native (non-tunneled) v6 uplinks are preferred, matching the
    /// paper's "high quality native IPv6 connectivity" requirement.
    ///
    /// Vantage 0 starts at week 0 and imports the DNS-cache tail (the
    /// Penn role), so the Fig 1 / Fig 3b pipelines always have an anchor.
    pub fn generate(
        &self,
        topo: &Topology,
        seed: u64,
        total_weeks: u32,
    ) -> Result<Vec<VantagePoint>, PopulationError> {
        let native_v6 = |id: AsId| {
            topo.neighbors(id, Family::V6).iter().any(|&(_, rel, eid)| {
                rel == Relationship::CustomerOf && topo.edge(eid).tunnel.is_none()
            })
        };
        // Per-region pools of eligible ASes, natives first within each
        // pool; both segments shuffled so the draw is uniform within its
        // preference class.
        let mut rng = derive_rng(seed, "vantage-population");
        let mut pools: Vec<Vec<AsId>> = Vec::with_capacity(Region::ALL.len());
        let mut found = 0usize;
        for region in Region::ALL {
            let mut natives: Vec<AsId> = Vec::new();
            let mut tunneled: Vec<AsId> = Vec::new();
            for n in topo.nodes() {
                if n.tier == Tier::Access && n.is_dual_stack() && n.region == region {
                    if native_v6(n.id) {
                        natives.push(n.id);
                    } else {
                        tunneled.push(n.id);
                    }
                }
            }
            natives.shuffle(&mut rng);
            tunneled.shuffle(&mut rng);
            natives.extend(tunneled);
            found += natives.len();
            pools.push(natives);
        }
        if found < self.count {
            return Err(PopulationError::InsufficientAses { needed: self.count, found });
        }

        let region_weight = |ri: usize| -> f64 {
            if self.regions.is_empty() {
                1.0
            } else {
                self.regions.iter().filter(|(r, _)| *r == Region::ALL[ri]).map(|(_, w)| *w).sum()
            }
        };

        let max_start = (self.max_start_share * total_weeks as f64) as u32;
        let mut vantages = Vec::with_capacity(self.count);
        for i in 0..self.count {
            // weighted region draw over non-empty pools; when every
            // weighted region has run dry, fall back to the rest
            let weight_of = |ri: usize, pools: &[Vec<AsId>]| -> f64 {
                if pools[ri].is_empty() {
                    0.0
                } else {
                    region_weight(ri)
                }
            };
            let mut total: f64 = (0..pools.len()).map(|ri| weight_of(ri, &pools)).sum();
            let fallback = total <= 0.0;
            if fallback {
                total = pools.iter().filter(|p| !p.is_empty()).count() as f64;
            }
            let mut x = rng.gen_range(0.0..total.max(f64::MIN_POSITIVE));
            let mut chosen = None;
            for ri in 0..pools.len() {
                let w = if fallback {
                    if pools[ri].is_empty() {
                        0.0
                    } else {
                        1.0
                    }
                } else {
                    weight_of(ri, &pools)
                };
                if w <= 0.0 {
                    continue;
                }
                x -= w;
                chosen = Some(ri);
                if x < 0.0 {
                    break;
                }
            }
            let ri = chosen.expect("found >= count guarantees a non-empty pool");
            let region = Region::ALL[ri];
            let as_id = pools[ri].remove(0);

            let kind = if rng.gen::<f64>() < self.academic_share {
                VantageKind::Academic
            } else {
                VantageKind::Commercial
            };
            let has_as_path = rng.gen::<f64>() < self.as_path_share;
            let white_listed = rng.gen::<f64>() < self.white_list_share;
            let stack = if self.stacks.is_empty() {
                ClientStack::DualStack
            } else {
                let stot: f64 = self.stacks.iter().map(|(_, w)| *w).sum();
                let mut sx = rng.gen_range(0.0..stot.max(f64::MIN_POSITIVE));
                let mut picked = ClientStack::DualStack;
                for (s, w) in &self.stacks {
                    if *w <= 0.0 {
                        continue;
                    }
                    sx -= w;
                    picked = *s;
                    if sx < 0.0 {
                        break;
                    }
                }
                picked
            };
            let start_week = if max_start == 0 {
                0
            } else {
                rng.gen_range(0..max_start.min(total_weeks.saturating_sub(1).max(1)))
            };
            // vantage 0 is the anchor: week 0, AS_PATH feed, external tail
            let anchor = i == 0;
            vantages.push(VantagePoint {
                name: format!("VP-{i:03}"),
                location: format!("{region:?}"),
                as_id,
                start_week: if anchor { 0 } else { start_week },
                has_as_path: has_as_path || anchor,
                white_listed: white_listed && !anchor,
                kind,
                external_inputs: anchor,
                stack: if anchor { ClientStack::DualStack } else { stack },
            });
        }
        Ok(vantages)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ipv6web_topology::{generate, TopologyConfig};

    fn topo() -> Topology {
        let mut cfg = TopologyConfig::scaled(700);
        cfg.dual.access_adoption = 0.6;
        generate(&cfg, 7)
    }

    #[test]
    fn generation_is_deterministic_and_distinct() {
        let t = topo();
        let pop = VantagePopulation { count: 40, ..Default::default() };
        let a = pop.generate(&t, 11, 26).unwrap();
        let b = pop.generate(&t, 11, 26).unwrap();
        assert_eq!(a, b, "same seed, same population");
        assert_eq!(a.len(), 40);
        let mut seen = std::collections::BTreeSet::new();
        for v in &a {
            assert!(seen.insert(v.as_id), "vantage ASes must be distinct");
            assert_eq!(t.node(v.as_id).tier, Tier::Access);
            assert!(t.node(v.as_id).is_dual_stack());
            assert!(v.start_week < 26);
        }
        let c = pop.generate(&t, 12, 26).unwrap();
        assert_ne!(a, c, "different seed, different population");
    }

    #[test]
    fn anchor_vantage_plays_the_penn_role() {
        let t = topo();
        let pop = VantagePopulation { count: 10, as_path_share: 0.0, ..Default::default() };
        let vps = pop.generate(&t, 3, 26).unwrap();
        assert_eq!(vps[0].start_week, 0);
        assert!(vps[0].has_as_path, "anchor keeps an AS_PATH feed");
        assert!(vps[0].external_inputs, "anchor imports the tail");
        assert!(vps[1..].iter().all(|v| !v.has_as_path && !v.external_inputs));
    }

    #[test]
    fn region_mix_is_respected() {
        let t = topo();
        let pop = VantagePopulation {
            count: 5,
            regions: vec![(Region::Asia, 1.0)],
            ..Default::default()
        };
        let vps = pop.generate(&t, 9, 26).unwrap();
        assert!(vps.iter().all(|v| t.node(v.as_id).region == Region::Asia), "{vps:?}");
    }

    #[test]
    fn stack_mix_assigns_stacks() {
        let t = topo();
        let pop = VantagePopulation {
            count: 12,
            stacks: vec![(ClientStack::V6Only, 1.0)],
            ..Default::default()
        };
        assert!(pop.has_translating_stacks());
        let vps = pop.generate(&t, 4, 26).unwrap();
        // the anchor stays dual-stack; everyone else gets the mix
        assert_eq!(vps[0].stack, ClientStack::DualStack);
        assert!(vps[1..].iter().all(|v| v.stack == ClientStack::V6Only));
    }

    #[test]
    fn too_small_topology_is_a_typed_error() {
        let mut cfg = TopologyConfig::scaled(300);
        cfg.dual.access_adoption = 0.0;
        let t = generate(&cfg, 5);
        let pop = VantagePopulation { count: 50, ..Default::default() };
        let err = pop.generate(&t, 1, 26).unwrap_err();
        assert_eq!(err, PopulationError::InsufficientAses { needed: 50, found: 0 });
        assert!(err.to_string().contains("50 needed"));
    }

    #[test]
    fn spec_validates() {
        assert!(VantagePopulation::default().validate().is_ok());
        let mut bad = VantagePopulation::default();
        bad.count = 0;
        assert!(bad.validate().is_err());
        let mut bad = VantagePopulation::default();
        bad.academic_share = 1.5;
        assert!(bad.validate().is_err());
        let mut bad = VantagePopulation::default();
        bad.regions = vec![(Region::Europe, -1.0)];
        assert!(bad.validate().is_err());
        let mut bad = VantagePopulation::default();
        bad.stacks = vec![(ClientStack::V6Only, 0.0)];
        assert!(bad.validate().is_err(), "all-zero stack weights rejected");
    }

    #[test]
    fn partial_spec_deserializes_with_defaults() {
        let v: VantagePopulation = serde_json::from_str(r#"{"count": 200}"#).unwrap();
        assert_eq!(v.count, 200);
        assert_eq!(v.academic_share, VantagePopulation::default().academic_share);
        let d = VantagePopulation::default();
        let json = serde_json::to_string(&d).unwrap();
        let back: VantagePopulation = serde_json::from_str(&json).unwrap();
        assert_eq!(back, d, "round-trips");
    }
}
