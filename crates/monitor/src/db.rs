//! Per-vantage results database.
//!
//! The paper's tool stores round results "in several tables in a mysql
//! database"; each vantage point keeps a local database and a common
//! repository aggregates them. [`MonitorDb`] is the in-memory equivalent,
//! serializable with serde for snapshotting.

use crate::round::RoundError;
use ipv6web_web::SiteId;
use serde::{DeError, Deserialize, Serialize, Value};

/// One accepted performance measurement (a round's mean download speed).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PerfSample {
    /// Campaign week of the round.
    pub week: u32,
    /// Mean download speed accepted by the confidence rule, kB/s.
    pub speed_kbps: f64,
    /// Downloads it took to satisfy the confidence rule.
    pub downloads: u32,
}

/// Everything a vantage point knows about one site.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct SiteRecord {
    /// Week the site joined this vantage point's monitored set.
    pub added_week: u32,
    /// Latest A-record observation.
    pub has_a: bool,
    /// Latest AAAA-record observation.
    pub has_aaaa: bool,
    /// First week both records were seen (IPv6 reachability timestamp).
    pub dual_since: Option<u32>,
    /// Latest page-identity verdict (None = never dual-downloaded).
    pub content_identical: Option<bool>,
    /// Accepted per-round IPv4 speed samples.
    pub samples_v4: Vec<PerfSample>,
    /// Accepted per-round IPv6 speed samples.
    pub samples_v6: Vec<PerfSample>,
    /// Rounds where the performance phase gave up (no confidence).
    pub unconfident_rounds: u32,
    /// Rounds discarded because a response failed to parse.
    pub malformed_rounds: u32,
    /// Rounds lost to injected faults (DNS failure or exchange timeout).
    pub faulted_rounds: u32,
}

impl SiteRecord {
    /// Paired samples (same week present in both families), the unit the
    /// cross-family analysis runs on.
    ///
    /// Samples are appended in round (week) order, so this is a two-pointer
    /// merge walk over the two sorted vectors — no per-call set allocation,
    /// which matters because the sanitizer runs it once per site per
    /// analysis pass. A v4 week that appears several times (the IPv6 Day
    /// databases stack all rounds on one week) is emitted once per v4
    /// sample, exactly like the set-membership implementation it replaces.
    pub fn paired_weeks(&self) -> Vec<u32> {
        debug_assert!(
            self.samples_v4.windows(2).all(|w| w[0].week <= w[1].week),
            "v4 samples out of week order"
        );
        debug_assert!(
            self.samples_v6.windows(2).all(|w| w[0].week <= w[1].week),
            "v6 samples out of week order"
        );
        let mut out = Vec::new();
        let mut j = 0;
        for s in &self.samples_v4 {
            while j < self.samples_v6.len() && self.samples_v6[j].week < s.week {
                j += 1;
            }
            if j < self.samples_v6.len() && self.samples_v6[j].week == s.week {
                out.push(s.week);
            }
        }
        out
    }
}

/// A vantage point's results database.
///
/// Records live in an insertion-ordered arena indexed by a dense
/// `site index → slot` table instead of a per-site tree: at the
/// internet tier a vantage point touches ~10⁶ sites, and the arena
/// keeps that to two flat allocations (plus each record's sample
/// vectors) with O(1) lookup. [`MonitorDb::iter`] presents the
/// canonical site-id order regardless of insertion order, and
/// equality/serialization go through that view, so campaigns that
/// touch sites in different orders (resume, merge) still compare and
/// snapshot identically.
#[derive(Debug, Clone, Default)]
pub struct MonitorDb {
    /// Vantage point name this database belongs to.
    pub vantage: String,
    /// `site.index() → slot + 1` (0 = never touched). Grows to the
    /// highest touched site index, which is bounded by the population.
    slots: Vec<u32>,
    /// Arena of records in first-touch order, parallel per slot.
    records: Vec<SiteRecord>,
    /// Rounds that finished degraded (worker/channel failure lost in-flight
    /// probes); the round's partial results are still recorded.
    pub round_errors: Vec<RoundError>,
    /// Weeks this vantage point was down entirely (injected outage); no
    /// round ran, nothing was recorded.
    pub outage_weeks: Vec<u32>,
    /// Rounds completed so far: weeks `< completed_weeks` are done (probed
    /// or skipped as an outage). The campaign resume point.
    pub completed_weeks: u32,
}

impl MonitorDb {
    /// Fresh database for a vantage point.
    pub fn new(vantage: impl Into<String>) -> Self {
        MonitorDb {
            vantage: vantage.into(),
            slots: Vec::new(),
            records: Vec::new(),
            round_errors: Vec::new(),
            outage_weeks: Vec::new(),
            completed_weeks: 0,
        }
    }

    /// Record for `site`, creating it (with `added_week`) on first touch.
    pub fn record_mut(&mut self, site: SiteId, added_week: u32) -> &mut SiteRecord {
        let i = site.index();
        if i >= self.slots.len() {
            self.slots.resize(i + 1, 0);
        }
        if self.slots[i] == 0 {
            self.records.push(SiteRecord { added_week, ..SiteRecord::default() });
            self.slots[i] =
                u32::try_from(self.records.len()).expect("u32 site space bounds slot count");
        }
        &mut self.records[(self.slots[i] - 1) as usize]
    }

    /// Read-only record lookup.
    pub fn record(&self, site: SiteId) -> Option<&SiteRecord> {
        match self.slots.get(site.index()) {
            Some(&slot) if slot != 0 => Some(&self.records[(slot - 1) as usize]),
            _ => None,
        }
    }

    /// All `(site, record)` pairs in site order.
    pub fn iter(&self) -> impl Iterator<Item = (SiteId, &SiteRecord)> {
        self.slots
            .iter()
            .enumerate()
            .filter(|(_, &slot)| slot != 0)
            .map(|(i, &slot)| (SiteId(i as u32), &self.records[(slot - 1) as usize]))
    }

    /// Number of sites ever touched.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True when no site was touched.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Sites observed dual-stack (both records seen at some round).
    pub fn dual_stack_sites(&self) -> impl Iterator<Item = SiteId> + '_ {
        self.iter().filter(|(_, r)| r.dual_since.is_some()).map(|(s, _)| s)
    }

    /// Fraction of monitored sites that were IPv6-reachable as of `week`
    /// (the Fig 1 series): sites whose `dual_since ≤ week`, over sites
    /// monitored by `week`.
    pub fn reachability_at(&self, week: u32) -> f64 {
        let monitored = self.records.iter().filter(|r| r.added_week <= week).count();
        if monitored == 0 {
            return 0.0;
        }
        let dual = self
            .records
            .iter()
            .filter(|r| r.added_week <= week && r.dual_since.is_some_and(|w| w <= week))
            .count();
        dual as f64 / monitored as f64
    }

    /// Writes the database as pretty JSON (the central repository's
    /// archival format).
    ///
    /// The write is atomic — JSON lands in a sibling temp file first and is
    /// renamed into place — so a crash mid-write (or mid-campaign
    /// checkpoint) never leaves a torn snapshot behind. Errors carry the
    /// target path.
    pub fn save_json(&self, path: impl AsRef<std::path::Path>) -> std::io::Result<()> {
        let path = path.as_ref();
        let with_path =
            |e: std::io::Error| std::io::Error::new(e.kind(), format!("{}: {e}", path.display()));
        let json = serde_json::to_string_pretty(self)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))
            .map_err(with_path)?;
        let mut tmp = path.as_os_str().to_owned();
        tmp.push(".tmp");
        let tmp = std::path::PathBuf::from(tmp);
        std::fs::write(&tmp, json).map_err(with_path)?;
        std::fs::rename(&tmp, path).map_err(with_path)
    }

    /// Loads a database written by [`MonitorDb::save_json`].
    pub fn load_json(path: impl AsRef<std::path::Path>) -> std::io::Result<MonitorDb> {
        let text = std::fs::read_to_string(path)?;
        serde_json::from_str(&text)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))
    }

    /// Merges another vantage's worth of records under site-id keys into a
    /// combined repository view (used by the central aggregation at
    /// "Penn"). Existing records are kept; the merge is additive per site
    /// and per sample list.
    pub fn merge_samples_from(&mut self, other: &MonitorDb) {
        for (site, rec) in other.iter() {
            let mine = self.record_mut(site, rec.added_week);
            mine.has_a |= rec.has_a;
            mine.has_aaaa |= rec.has_aaaa;
            mine.dual_since = match (mine.dual_since, rec.dual_since) {
                (Some(a), Some(b)) => Some(a.min(b)),
                (a, b) => a.or(b),
            };
            if mine.content_identical.is_none() {
                mine.content_identical = rec.content_identical;
            }
            mine.samples_v4.extend_from_slice(&rec.samples_v4);
            mine.samples_v6.extend_from_slice(&rec.samples_v6);
            // restore the week-sortedness invariant `paired_weeks` walks on
            // (stable: same-week samples keep their per-database order)
            mine.samples_v4.sort_by_key(|s| s.week);
            mine.samples_v6.sort_by_key(|s| s.week);
            mine.unconfident_rounds += rec.unconfident_rounds;
            mine.malformed_rounds += rec.malformed_rounds;
            mine.faulted_rounds += rec.faulted_rounds;
        }
    }
}

/// Equality over the canonical (site-ordered) view: two databases with
/// the same records are equal even when first-touch order differed
/// (a resumed campaign replays weeks, a merge interleaves vantages).
impl PartialEq for MonitorDb {
    fn eq(&self, other: &Self) -> bool {
        self.vantage == other.vantage
            && self.len() == other.len()
            && self.iter().eq(other.iter())
            && self.round_errors == other.round_errors
            && self.outage_weeks == other.outage_weeks
            && self.completed_weeks == other.completed_weeks
    }
}

/// Snapshots serialize records as `[site_id, record]` pairs in site
/// order — the arena's slot table is an in-memory acceleration
/// structure, not part of the archival format.
impl Serialize for MonitorDb {
    fn to_value(&self) -> Value {
        let records: Vec<Value> = self
            .iter()
            .map(|(site, rec)| Value::Arr(vec![site.to_value(), rec.to_value()]))
            .collect();
        Value::Obj(vec![
            ("vantage".to_string(), self.vantage.to_value()),
            ("records".to_string(), Value::Arr(records)),
            ("round_errors".to_string(), self.round_errors.to_value()),
            ("outage_weeks".to_string(), self.outage_weeks.to_value()),
            ("completed_weeks".to_string(), self.completed_weeks.to_value()),
        ])
    }
}

impl Deserialize for MonitorDb {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let field = |name: &str| {
            v.get_field(name).ok_or_else(|| DeError::new(format!("MonitorDb missing `{name}`")))
        };
        let mut db = MonitorDb::new(String::from_value(field("vantage")?)?);
        let pairs: Vec<(SiteId, SiteRecord)> = Deserialize::from_value(field("records")?)?;
        for (site, rec) in pairs {
            let added = rec.added_week;
            *db.record_mut(site, added) = rec;
        }
        db.round_errors = Deserialize::from_value(field("round_errors")?)?;
        db.outage_weeks = Deserialize::from_value(field("outage_weeks")?)?;
        db.completed_weeks = Deserialize::from_value(field("completed_weeks")?)?;
        Ok(db)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(week: u32, speed: f64) -> PerfSample {
        PerfSample { week, speed_kbps: speed, downloads: 4 }
    }

    #[test]
    fn record_created_on_first_touch() {
        let mut db = MonitorDb::new("Penn");
        assert!(db.is_empty());
        db.record_mut(SiteId(5), 3).has_a = true;
        assert_eq!(db.len(), 1);
        assert_eq!(db.record(SiteId(5)).unwrap().added_week, 3);
        // second touch does not reset added_week
        db.record_mut(SiteId(5), 9);
        assert_eq!(db.record(SiteId(5)).unwrap().added_week, 3);
    }

    #[test]
    fn paired_weeks_intersects_families() {
        let mut r = SiteRecord::default();
        r.samples_v4 = vec![sample(1, 10.0), sample(2, 11.0), sample(4, 12.0)];
        r.samples_v6 = vec![sample(2, 9.0), sample(3, 9.0), sample(4, 9.0)];
        assert_eq!(r.paired_weeks(), vec![2, 4]);
    }

    #[test]
    fn paired_weeks_preserves_v4_multiplicity() {
        // IPv6 Day databases stack every round's samples on one week; the
        // pairing must emit the week once per v4 sample, like the old
        // set-membership implementation did.
        let mut r = SiteRecord::default();
        r.samples_v4 = vec![sample(10, 10.0), sample(10, 11.0), sample(10, 12.0)];
        r.samples_v6 = vec![sample(10, 9.0), sample(10, 9.5)];
        assert_eq!(r.paired_weeks(), vec![10, 10, 10]);
    }

    #[test]
    fn paired_weeks_empty_families() {
        let mut r = SiteRecord::default();
        assert!(r.paired_weeks().is_empty());
        r.samples_v4 = vec![sample(1, 1.0)];
        assert!(r.paired_weeks().is_empty(), "no v6 samples, nothing pairs");
        r.samples_v4.clear();
        r.samples_v6 = vec![sample(1, 1.0)];
        assert!(r.paired_weeks().is_empty(), "no v4 samples, nothing pairs");
    }

    #[test]
    fn merge_restores_week_order_for_pairing() {
        // central has later weeks than the incoming db; after the merge
        // the sample vectors must be week-sorted again so paired_weeks'
        // two-pointer walk sees its invariant
        let mut central = MonitorDb::new("repo");
        let r = central.record_mut(SiteId(1), 0);
        r.samples_v4.push(sample(5, 10.0));
        r.samples_v6.push(sample(5, 9.0));
        let mut other = MonitorDb::new("other");
        let o = other.record_mut(SiteId(1), 0);
        o.samples_v4.push(sample(2, 8.0));
        o.samples_v6.push(sample(2, 7.0));
        central.merge_samples_from(&other);
        let m = central.record(SiteId(1)).unwrap();
        let weeks: Vec<u32> = m.samples_v4.iter().map(|s| s.week).collect();
        assert_eq!(weeks, vec![2, 5]);
        assert_eq!(m.paired_weeks(), vec![2, 5]);
    }

    #[test]
    fn reachability_series() {
        let mut db = MonitorDb::new("x");
        // 4 sites monitored from week 0; one goes dual at week 2, another at week 5
        for i in 0..4 {
            db.record_mut(SiteId(i), 0);
        }
        db.record_mut(SiteId(0), 0).dual_since = Some(2);
        db.record_mut(SiteId(1), 0).dual_since = Some(5);
        assert_eq!(db.reachability_at(0), 0.0);
        assert_eq!(db.reachability_at(2), 0.25);
        assert_eq!(db.reachability_at(5), 0.5);
        // site added later enters the denominator only from its week
        db.record_mut(SiteId(9), 6);
        assert_eq!(db.reachability_at(5), 0.5);
        assert_eq!(db.reachability_at(6), 0.4);
    }

    #[test]
    fn reachability_empty_db_zero() {
        assert_eq!(MonitorDb::new("x").reachability_at(10), 0.0);
    }

    #[test]
    fn dual_stack_sites_listing() {
        let mut db = MonitorDb::new("x");
        db.record_mut(SiteId(1), 0).dual_since = Some(1);
        db.record_mut(SiteId(2), 0);
        let dual: Vec<SiteId> = db.dual_stack_sites().collect();
        assert_eq!(dual, vec![SiteId(1)]);
    }

    #[test]
    fn merge_accumulates() {
        let mut a = MonitorDb::new("repo");
        a.record_mut(SiteId(1), 0).samples_v4.push(sample(1, 5.0));
        let mut b = MonitorDb::new("other");
        let r = b.record_mut(SiteId(1), 2);
        r.samples_v4.push(sample(2, 6.0));
        r.dual_since = Some(3);
        r.has_aaaa = true;
        b.record_mut(SiteId(7), 1).has_a = true;

        a.merge_samples_from(&b);
        let m = a.record(SiteId(1)).unwrap();
        assert_eq!(m.samples_v4.len(), 2);
        assert_eq!(m.dual_since, Some(3));
        assert!(m.has_aaaa);
        assert!(a.record(SiteId(7)).unwrap().has_a);
    }

    #[test]
    fn file_snapshot_roundtrip() {
        let mut db = MonitorDb::new("Penn");
        db.record_mut(SiteId(1), 0).samples_v4.push(sample(3, 55.0));
        db.record_mut(SiteId(2), 1).dual_since = Some(4);
        let dir = std::env::temp_dir().join("ipv6web-db-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("penn.json");
        db.save_json(&path).unwrap();
        let back = MonitorDb::load_json(&path).unwrap();
        assert_eq!(db, back);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn load_rejects_garbage() {
        let dir = std::env::temp_dir().join("ipv6web-db-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("garbage.json");
        std::fs::write(&path, "not json at all").unwrap();
        assert!(MonitorDb::load_json(&path).is_err());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn equality_ignores_first_touch_order() {
        let mut a = MonitorDb::new("x");
        a.record_mut(SiteId(9), 1).has_a = true;
        a.record_mut(SiteId(2), 0).has_aaaa = true;
        let mut b = MonitorDb::new("x");
        b.record_mut(SiteId(2), 0).has_aaaa = true;
        b.record_mut(SiteId(9), 1).has_a = true;
        assert_eq!(a, b, "arena insertion order must not leak into equality");
        let ids: Vec<u32> = a.iter().map(|(s, _)| s.0).collect();
        assert_eq!(ids, vec![2, 9], "iteration is in site order");
    }

    #[test]
    fn serde_roundtrip() {
        let mut db = MonitorDb::new("Penn");
        db.record_mut(SiteId(3), 1).samples_v6.push(sample(4, 33.0));
        let json = serde_json::to_string(&db).unwrap();
        let back: MonitorDb = serde_json::from_str(&json).unwrap();
        assert_eq!(db, back);
    }
}
