//! Vantage points (Table 1).

use ipv6web_topology::AsId;
use serde::{Deserialize, Serialize};

/// Academic or commercial network (Table 1's "Type" column).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum VantageKind {
    /// University network.
    Academic,
    /// Commercial ISP.
    Commercial,
}

impl std::fmt::Display for VantageKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            VantageKind::Academic => write!(f, "Acad."),
            VantageKind::Commercial => write!(f, "Comml."),
        }
    }
}

/// One monitoring vantage point.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct VantagePoint {
    /// Short name ("Penn", "Comcast", …).
    pub name: String,
    /// Human-readable location ("Philadelphia, PA").
    pub location: String,
    /// The access AS hosting the monitor.
    pub as_id: AsId,
    /// Campaign week monitoring starts at this vantage point.
    pub start_week: u32,
    /// Whether BGP `AS_PATH` data is available (Table 1 column 3) — only
    /// such vantage points enter the path-correlated analysis.
    pub has_as_path: bool,
    /// Whether the vantage point was white-listed by Google (Table 1).
    pub white_listed: bool,
    /// Network type.
    pub kind: VantageKind,
    /// Whether this vantage point imports extra sites beyond the ranked
    /// list (Penn's DNS-cache tail, Fig 3b).
    pub external_inputs: bool,
}

impl VantagePoint {
    /// The paper's six vantage points (Table 1), with start weeks mapped
    /// onto the simulated campaign calendar (week 0 = 2010-08-12; start
    /// dates before that clamp to 0). `as_ids` supplies the access ASes in
    /// the generated topology, in the table's row order:
    /// Comcast, Go6, Loughborough, Penn, Tsinghua, UPCB.
    ///
    /// # Panics
    /// Panics unless exactly six AS ids are supplied.
    pub fn paper_table1(as_ids: &[AsId]) -> Vec<VantagePoint> {
        assert_eq!(as_ids.len(), 6, "Table 1 has six vantage points");
        let mk = |name: &str,
                  location: &str,
                  as_id: AsId,
                  start_week: u32,
                  has_as_path: bool,
                  white_listed: bool,
                  kind: VantageKind,
                  external_inputs: bool| VantagePoint {
            name: name.into(),
            location: location.into(),
            as_id,
            start_week,
            has_as_path,
            white_listed,
            kind,
            external_inputs,
        };
        vec![
            // 2/4/11 → week 25
            mk("Comcast", "Denver, CO", as_ids[0], 25, true, false, VantageKind::Commercial, false),
            // 5/19/11 → week 40
            mk(
                "Go6-Slovenia",
                "Slovenia",
                as_ids[1],
                40,
                false,
                false,
                VantageKind::Commercial,
                false,
            ),
            // 4/29/11 → week 37
            mk(
                "Loughborough U.",
                "Great Britain",
                as_ids[2],
                37,
                true,
                false,
                VantageKind::Academic,
                false,
            ),
            // 7/22/09 → before campaign start, clamp to 0
            mk("Penn", "Philadelphia, PA", as_ids[3], 0, true, false, VantageKind::Academic, true),
            // 3/22/11 → week 31
            mk("Tsinghua U.", "China", as_ids[4], 31, false, false, VantageKind::Academic, false),
            // 2/28/11 → week 28
            mk(
                "UPC Broadband",
                "Netherlands",
                as_ids[5],
                28,
                true,
                true,
                VantageKind::Commercial,
                false,
            ),
        ]
    }

    /// The subset with `AS_PATH` data, i.e. the four columns of Tables 2-9.
    pub fn with_as_path(vps: &[VantagePoint]) -> Vec<&VantagePoint> {
        vps.iter().filter(|v| v.has_as_path).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ids() -> Vec<AsId> {
        (0..6).map(AsId).collect()
    }

    #[test]
    fn table1_has_six_rows() {
        let vps = VantagePoint::paper_table1(&ids());
        assert_eq!(vps.len(), 6);
        assert_eq!(vps[3].name, "Penn");
        assert_eq!(vps[3].start_week, 0, "Penn started before the window");
        assert!(vps[3].external_inputs, "Penn imports the DNS-cache tail");
    }

    #[test]
    fn as_path_subset_matches_table() {
        let vps = VantagePoint::paper_table1(&ids());
        let with = VantagePoint::with_as_path(&vps);
        let names: Vec<&str> = with.iter().map(|v| v.name.as_str()).collect();
        assert_eq!(names, ["Comcast", "Loughborough U.", "Penn", "UPC Broadband"]);
    }

    #[test]
    fn only_upcb_is_white_listed() {
        let vps = VantagePoint::paper_table1(&ids());
        let wl: Vec<&str> =
            vps.iter().filter(|v| v.white_listed).map(|v| v.name.as_str()).collect();
        assert_eq!(wl, ["UPC Broadband"]);
    }

    #[test]
    fn kinds_match_table() {
        let vps = VantagePoint::paper_table1(&ids());
        assert_eq!(vps[0].kind, VantageKind::Commercial);
        assert_eq!(vps[2].kind, VantageKind::Academic);
        assert_eq!(VantageKind::Academic.to_string(), "Acad.");
        assert_eq!(VantageKind::Commercial.to_string(), "Comml.");
    }

    #[test]
    #[should_panic(expected = "six")]
    fn wrong_as_count_panics() {
        VantagePoint::paper_table1(&[AsId(1)]);
    }
}
