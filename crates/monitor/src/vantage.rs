//! Vantage points (Table 1).

use ipv6web_topology::AsId;
use ipv6web_xlat::ClientStack;
use serde::{Deserialize, Serialize, Value};

/// Academic or commercial network (Table 1's "Type" column).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum VantageKind {
    /// University network.
    Academic,
    /// Commercial ISP.
    Commercial,
}

impl std::fmt::Display for VantageKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            VantageKind::Academic => write!(f, "Acad."),
            VantageKind::Commercial => write!(f, "Comml."),
        }
    }
}

/// One monitoring vantage point.
///
/// Serialization is hand-written: the `stack` field is emitted only when it
/// differs from [`ClientStack::DualStack`], so snapshots of classic
/// dual-stack studies stay byte-identical to those written before the
/// client-stack axis existed (and deserialize with the same meaning).
#[derive(Debug, Clone, PartialEq, Deserialize)]
pub struct VantagePoint {
    /// Short name ("Penn", "Comcast", …).
    pub name: String,
    /// Human-readable location ("Philadelphia, PA").
    pub location: String,
    /// The access AS hosting the monitor.
    pub as_id: AsId,
    /// Campaign week monitoring starts at this vantage point.
    pub start_week: u32,
    /// Whether BGP `AS_PATH` data is available (Table 1 column 3) — only
    /// such vantage points enter the path-correlated analysis.
    pub has_as_path: bool,
    /// Whether the vantage point was white-listed by Google (Table 1).
    pub white_listed: bool,
    /// Network type.
    pub kind: VantageKind,
    /// Whether this vantage point imports extra sites beyond the ranked
    /// list (Penn's DNS-cache tail, Fig 3b).
    pub external_inputs: bool,
    /// What address families the monitor's host actually holds. The
    /// paper's vantages are all dual-stack; the nat64 tier marks some as
    /// v6-only (with or without a CLAT).
    pub stack: ClientStack,
}

impl Serialize for VantagePoint {
    fn to_value(&self) -> Value {
        let mut fields = vec![
            ("name".to_string(), self.name.to_value()),
            ("location".to_string(), self.location.to_value()),
            ("as_id".to_string(), self.as_id.to_value()),
            ("start_week".to_string(), self.start_week.to_value()),
            ("has_as_path".to_string(), self.has_as_path.to_value()),
            ("white_listed".to_string(), self.white_listed.to_value()),
            ("kind".to_string(), self.kind.to_value()),
            ("external_inputs".to_string(), self.external_inputs.to_value()),
        ];
        if self.stack != ClientStack::DualStack {
            fields.push(("stack".to_string(), self.stack.to_value()));
        }
        Value::Obj(fields)
    }
}

/// Error from [`VantagePoint::try_paper_table1`]: Table 1 wires exactly six
/// access ASes, one per row.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VantageCountError {
    /// How many AS ids Table 1 needs.
    pub expected: usize,
    /// How many were supplied.
    pub found: usize,
}

impl std::fmt::Display for VantageCountError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "Table 1 has six vantage points ({} expected) but {} access ASes were supplied",
            self.expected, self.found
        )
    }
}

impl std::error::Error for VantageCountError {}

impl VantagePoint {
    /// The paper's six vantage points (Table 1), with start weeks mapped
    /// onto the simulated campaign calendar (week 0 = 2010-08-12; start
    /// dates before that clamp to 0). `as_ids` supplies the access ASes in
    /// the generated topology, in the table's row order:
    /// Comcast, Go6, Loughborough, Penn, Tsinghua, UPCB.
    ///
    /// # Panics
    /// Panics unless exactly six AS ids are supplied; production callers
    /// should use [`VantagePoint::try_paper_table1`].
    pub fn paper_table1(as_ids: &[AsId]) -> Vec<VantagePoint> {
        Self::try_paper_table1(as_ids).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible [`VantagePoint::paper_table1`]: returns a typed error
    /// instead of panicking when the slice is not exactly six ASes long.
    pub fn try_paper_table1(as_ids: &[AsId]) -> Result<Vec<VantagePoint>, VantageCountError> {
        if as_ids.len() != 6 {
            return Err(VantageCountError { expected: 6, found: as_ids.len() });
        }
        let mk = |name: &str,
                  location: &str,
                  as_id: AsId,
                  start_week: u32,
                  has_as_path: bool,
                  white_listed: bool,
                  kind: VantageKind,
                  external_inputs: bool| VantagePoint {
            name: name.into(),
            location: location.into(),
            as_id,
            start_week,
            has_as_path,
            white_listed,
            kind,
            external_inputs,
            stack: ClientStack::DualStack,
        };
        Ok(vec![
            // 2/4/11 → week 25
            mk("Comcast", "Denver, CO", as_ids[0], 25, true, false, VantageKind::Commercial, false),
            // 5/19/11 → week 40
            mk(
                "Go6-Slovenia",
                "Slovenia",
                as_ids[1],
                40,
                false,
                false,
                VantageKind::Commercial,
                false,
            ),
            // 4/29/11 → week 37
            mk(
                "Loughborough U.",
                "Great Britain",
                as_ids[2],
                37,
                true,
                false,
                VantageKind::Academic,
                false,
            ),
            // 7/22/09 → before campaign start, clamp to 0
            mk("Penn", "Philadelphia, PA", as_ids[3], 0, true, false, VantageKind::Academic, true),
            // 3/22/11 → week 31
            mk("Tsinghua U.", "China", as_ids[4], 31, false, false, VantageKind::Academic, false),
            // 2/28/11 → week 28
            mk(
                "UPC Broadband",
                "Netherlands",
                as_ids[5],
                28,
                true,
                true,
                VantageKind::Commercial,
                false,
            ),
        ])
    }

    /// The subset with `AS_PATH` data, i.e. the four columns of Tables 2-9.
    pub fn with_as_path(vps: &[VantagePoint]) -> Vec<&VantagePoint> {
        vps.iter().filter(|v| v.has_as_path).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ids() -> Vec<AsId> {
        (0..6).map(AsId).collect()
    }

    #[test]
    fn table1_has_six_rows() {
        let vps = VantagePoint::paper_table1(&ids());
        assert_eq!(vps.len(), 6);
        assert_eq!(vps[3].name, "Penn");
        assert_eq!(vps[3].start_week, 0, "Penn started before the window");
        assert!(vps[3].external_inputs, "Penn imports the DNS-cache tail");
    }

    #[test]
    fn as_path_subset_matches_table() {
        let vps = VantagePoint::paper_table1(&ids());
        let with = VantagePoint::with_as_path(&vps);
        let names: Vec<&str> = with.iter().map(|v| v.name.as_str()).collect();
        assert_eq!(names, ["Comcast", "Loughborough U.", "Penn", "UPC Broadband"]);
    }

    #[test]
    fn only_upcb_is_white_listed() {
        let vps = VantagePoint::paper_table1(&ids());
        let wl: Vec<&str> =
            vps.iter().filter(|v| v.white_listed).map(|v| v.name.as_str()).collect();
        assert_eq!(wl, ["UPC Broadband"]);
    }

    #[test]
    fn kinds_match_table() {
        let vps = VantagePoint::paper_table1(&ids());
        assert_eq!(vps[0].kind, VantageKind::Commercial);
        assert_eq!(vps[2].kind, VantageKind::Academic);
        assert_eq!(VantageKind::Academic.to_string(), "Acad.");
        assert_eq!(VantageKind::Commercial.to_string(), "Comml.");
    }

    #[test]
    #[should_panic(expected = "six")]
    fn wrong_as_count_panics() {
        VantagePoint::paper_table1(&[AsId(1)]);
    }

    #[test]
    fn wrong_as_count_is_a_typed_error() {
        let err = VantagePoint::try_paper_table1(&[AsId(1)]).unwrap_err();
        assert_eq!(err, VantageCountError { expected: 6, found: 1 });
        assert!(err.to_string().contains("six vantage points"));
        assert_eq!(VantagePoint::try_paper_table1(&ids()).unwrap().len(), 6);
    }

    #[test]
    fn stack_serialized_only_when_not_dual() {
        let mut vp = VantagePoint::paper_table1(&ids()).swap_remove(0);
        assert_eq!(vp.stack, ClientStack::DualStack);
        let json = serde_json::to_string(&vp).unwrap();
        assert!(!json.contains("stack"), "dual-stack must serialize as before: {json}");
        let back: VantagePoint = serde_json::from_str(&json).unwrap();
        assert_eq!(back, vp, "missing field deserializes to dual-stack");
        vp.stack = ClientStack::V6OnlyClat;
        let json = serde_json::to_string(&vp).unwrap();
        assert!(json.contains("v6-only-clat"), "{json}");
        let back: VantagePoint = serde_json::from_str(&json).unwrap();
        assert_eq!(back.stack, ClientStack::V6OnlyClat);
    }
}
