//! Per-destination Gao–Rexford route computation.
//!
//! For one destination AS and one address family, [`routes_to_dest`] computes
//! the best policy-compliant route *from every AS* in three phases:
//!
//! 1. **Customer routes** — BFS from the destination "up" provider edges:
//!    an AS learns a customer route when a customer of its announces the
//!    destination. These are the most preferred and freely re-exported.
//! 2. **Peer routes** — each AS adjacent (via a peer edge) to an AS with a
//!    customer route (or to the destination itself) learns a peer route.
//!    Peer routes are only exported to customers.
//! 3. **Provider routes** — Dijkstra-style propagation "down" customer
//!    edges: a provider exports its best route (of any kind) to customers.
//!
//! Selection follows BGP decision order: local preference (customer > peer
//! > provider), then shortest AS path, then lowest next-hop AS id.

use crate::path::AsPath;
use ipv6web_topology::{AsId, EdgeId, Family, Relationship, Topology};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// How a route was learned — BGP local preference order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum RouteKind {
    /// Learned from a customer (most preferred).
    Customer,
    /// Learned from a peer.
    Peer,
    /// Learned from a provider (least preferred).
    Provider,
}

/// Per-AS routing entry toward one destination (transient, used while
/// computing; the stored form is the columnar [`RoutesToDest`]).
#[derive(Debug, Clone, Copy, PartialEq)]
struct Entry {
    kind: RouteKind,
    hops: u32,
    /// Next hop toward the destination and the edge used.
    next: Option<(AsId, EdgeId)>,
}

/// `kind` column sentinel for "no route at this AS".
const UNREACHABLE: u8 = 3;
/// `next_as` column sentinel for "no next hop" (the destination itself).
const NO_NEXT: u32 = u32::MAX;

/// Best routes from every AS to a single destination in one family.
///
/// Stored columnar (SoA): four flat per-AS columns instead of a
/// `Vec<Option<Entry>>`. A study at internet scale keeps thousands of
/// these alive at ~37k ASes each, and the columns cut the per-AS cost
/// to 13 bytes with no niche/padding overhead.
#[derive(Debug, Clone)]
pub struct RoutesToDest {
    dest: AsId,
    family: Family,
    /// [`RouteKind`] as `u8`, or [`UNREACHABLE`].
    kind: Vec<u8>,
    /// Next-hop AS id, or [`NO_NEXT`].
    next_as: Vec<u32>,
    /// Edge to the next hop (valid only when `next_as` is set).
    next_edge: Vec<u32>,
}

impl RoutesToDest {
    /// Packs the transient per-AS entries into columns. Hop counts are
    /// not retained — they are derivable by walking the next-hop chain,
    /// and no stored-table consumer needs them.
    fn from_entries(dest: AsId, family: Family, entries: &[Option<Entry>]) -> Self {
        let mut kind = Vec::with_capacity(entries.len());
        let mut next_as = Vec::with_capacity(entries.len());
        let mut next_edge = Vec::with_capacity(entries.len());
        for e in entries {
            match e {
                None => {
                    kind.push(UNREACHABLE);
                    next_as.push(NO_NEXT);
                    next_edge.push(0);
                }
                Some(e) => {
                    kind.push(e.kind as u8);
                    next_as.push(e.next.map_or(NO_NEXT, |(a, _)| a.0));
                    next_edge.push(e.next.map_or(0, |(_, eid)| eid.0));
                }
            }
        }
        RoutesToDest { dest, family, kind, next_as, next_edge }
    }

    fn kind_at(&self, i: usize) -> Option<RouteKind> {
        match self.kind[i] {
            0 => Some(RouteKind::Customer),
            1 => Some(RouteKind::Peer),
            2 => Some(RouteKind::Provider),
            _ => None,
        }
    }

    fn next_at(&self, i: usize) -> Option<(AsId, EdgeId)> {
        if self.next_as[i] == NO_NEXT {
            None
        } else {
            Some((AsId(self.next_as[i]), EdgeId(self.next_edge[i])))
        }
    }
    /// The destination these routes lead to.
    pub fn dest(&self) -> AsId {
        self.dest
    }

    /// The address family of these routes.
    pub fn family(&self) -> Family {
        self.family
    }

    /// Whether `src` has any route to the destination.
    pub fn reachable_from(&self, src: AsId) -> bool {
        self.kind[src.index()] != UNREACHABLE
    }

    /// How the route at `src` was learned, if reachable.
    pub fn kind(&self, src: AsId) -> Option<RouteKind> {
        self.kind_at(src.index())
    }

    /// AS-path from `src` to the destination, if reachable.
    ///
    /// Also returns `None` if the next-hop chain is corrupt (a broken
    /// link, a loop, or a repeated AS) — the computation never produces
    /// such a table, but a caller walking one must degrade to
    /// "unreachable", not bring down the campaign.
    pub fn as_path(&self, src: AsId) -> Option<AsPath> {
        if !self.reachable_from(src) {
            return None;
        }
        let mut ases = vec![src];
        let mut cur = src;
        while cur != self.dest {
            if !self.reachable_from(cur) {
                return None;
            }
            let (next, _) = self.next_at(cur.index())?;
            ases.push(next);
            cur = next;
            if ases.len() > self.kind.len() {
                return None; // routing loop
            }
        }
        AsPath::try_new(ases)
    }

    /// Whether any AS's installed route steps over one of `edges`.
    ///
    /// The installed routes form a tree rooted at the destination (each AS
    /// points at its next hop), so checking every entry's next-hop edge
    /// covers every edge of every path in `O(|ASes|)`.
    pub fn uses_any_edge(&self, edges: &std::collections::BTreeSet<EdgeId>) -> bool {
        (0..self.kind.len()).any(|i| {
            self.kind[i] != UNREACHABLE
                && self.next_as[i] != NO_NEXT
                && edges.contains(&EdgeId(self.next_edge[i]))
        })
    }

    /// Edge ids along the path from `src`, in order, if reachable. `None`
    /// on a corrupt chain, like [`RoutesToDest::as_path`].
    pub fn edge_path(&self, src: AsId) -> Option<Vec<EdgeId>> {
        if !self.reachable_from(src) {
            return None;
        }
        let mut edges = Vec::new();
        let mut cur = src;
        while cur != self.dest {
            if !self.reachable_from(cur) {
                return None;
            }
            let (next, eid) = self.next_at(cur.index())?;
            edges.push(eid);
            cur = next;
            if edges.len() > self.kind.len() {
                return None; // routing loop
            }
        }
        Some(edges)
    }
}

/// Returns `(better)` whether candidate (kind,hops,next_id) beats incumbent.
fn better(cand: (RouteKind, u32, u32), inc: (RouteKind, u32, u32)) -> bool {
    // RouteKind derives Ord with Customer < Peer < Provider: smaller is better.
    cand < inc
}

/// Computes best routes from all ASes to `dest` over the `family` subgraph.
pub fn routes_to_dest(topo: &Topology, dest: AsId, family: Family) -> RoutesToDest {
    ipv6web_obs::inc("bgp.routes_computed");
    let n = topo.num_ases();
    let mut entries: Vec<Option<Entry>> = vec![None; n];
    entries[dest.index()] = Some(Entry { kind: RouteKind::Customer, hops: 0, next: None });

    // Phase 1: customer routes — BFS from dest along provider edges
    // (from node x to x's providers).
    let mut frontier = vec![dest];
    while !frontier.is_empty() {
        let mut next_frontier: Vec<AsId> = Vec::new();
        for &x in &frontier {
            let x_hops = entries[x.index()].expect("frontier has entry").hops;
            for &(nbr, rel, eid) in topo.neighbors(x, family) {
                // x sees nbr as its provider => rel (from x's view) == CustomerOf
                if rel != Relationship::CustomerOf {
                    continue;
                }
                let cand = (RouteKind::Customer, x_hops + 1, x.0);
                let take = match entries[nbr.index()] {
                    None => true,
                    Some(e) => {
                        let inc_next = e.next.map_or(u32::MAX, |(a, _)| a.0);
                        better(cand, (e.kind, e.hops, inc_next))
                    }
                };
                if take {
                    let first_time = entries[nbr.index()].is_none();
                    entries[nbr.index()] = Some(Entry {
                        kind: RouteKind::Customer,
                        hops: x_hops + 1,
                        next: Some((x, eid)),
                    });
                    if first_time {
                        next_frontier.push(nbr);
                    }
                }
            }
        }
        frontier = next_frontier;
    }

    // Phase 2: peer routes — one peer edge off a customer route.
    let customer_holders: Vec<AsId> = (0..n as u32)
        .map(AsId)
        .filter(|a| matches!(entries[a.index()], Some(e) if e.kind == RouteKind::Customer))
        .collect();
    for &x in &customer_holders {
        let x_hops = entries[x.index()].expect("holder").hops;
        for &(nbr, rel, eid) in topo.neighbors(x, family) {
            if rel != Relationship::Peer {
                continue;
            }
            let cand = (RouteKind::Peer, x_hops + 1, x.0);
            let take = match entries[nbr.index()] {
                None => true,
                Some(e) => {
                    let inc_next = e.next.map_or(u32::MAX, |(a, _)| a.0);
                    better(cand, (e.kind, e.hops, inc_next))
                }
            };
            if take {
                entries[nbr.index()] =
                    Some(Entry { kind: RouteKind::Peer, hops: x_hops + 1, next: Some((x, eid)) });
            }
        }
    }

    // Phase 3: provider routes — Dijkstra down customer edges. Sources are
    // all ASes holding customer or peer routes; anything they reach through
    // "provider exports to customer" becomes a provider route.
    let mut heap: BinaryHeap<Reverse<(u32, u32, u32)>> = BinaryHeap::new(); // (hops, next_id, node)
    for (i, entry) in entries.iter().enumerate().take(n) {
        if let Some(e) = entry {
            heap.push(Reverse((e.hops, e.next.map_or(0, |(a, _)| a.0), i as u32)));
        }
    }
    while let Some(Reverse((hops, _, u))) = heap.pop() {
        let u = AsId(u);
        let Some(eu) = entries[u.index()] else { continue };
        if eu.hops != hops {
            continue; // stale heap entry
        }
        for &(nbr, rel, eid) in topo.neighbors(u, family) {
            // u exports to its customers: rel from u's view == ProviderOf
            if rel != Relationship::ProviderOf {
                continue;
            }
            let cand = (RouteKind::Provider, hops + 1, u.0);
            let take = match entries[nbr.index()] {
                None => true,
                Some(e) => {
                    let inc_next = e.next.map_or(u32::MAX, |(a, _)| a.0);
                    better(cand, (e.kind, e.hops, inc_next))
                }
            };
            if take {
                entries[nbr.index()] =
                    Some(Entry { kind: RouteKind::Provider, hops: hops + 1, next: Some((u, eid)) });
                heap.push(Reverse((hops + 1, u.0, nbr.0)));
            }
        }
    }

    RoutesToDest::from_entries(dest, family, &entries)
}

/// Checks valley-freeness of a path: zero or more "up" (customer→provider)
/// edges, at most one peer edge, then zero or more "down" edges. Used by
/// tests and assertions.
///
/// An AS pair can be linked by several edges in one family with *different*
/// relationships — island stitching adds a 6in4 tunnel (customer→provider)
/// between ASes that may already peer natively. A path step is therefore
/// policy-compliant if ANY edge between the two ASes admits it, so the
/// check tracks the set of reachable stages instead of assuming the first
/// edge found is the one the route used.
pub fn is_valley_free(topo: &Topology, path: &AsPath, family: Family) -> bool {
    const UP: u8 = 0b001;
    const PEERED: u8 = 0b010;
    const DOWN: u8 = 0b100;
    let mut stages = UP;
    for w in path.ases().windows(2) {
        let mut next = 0u8;
        for &(nbr, rel, _) in topo.neighbors(w[0], family) {
            if nbr != w[1] {
                continue;
            }
            match rel {
                // w[0] is the customer: going up, only valid before the apex
                Relationship::CustomerOf => {
                    if stages & UP != 0 {
                        next |= UP;
                    }
                }
                // at most one peer edge, at the apex
                Relationship::Peer => {
                    if stages & UP != 0 {
                        next |= PEERED;
                    }
                }
                // w[0] is the provider: going down, valid from any stage
                Relationship::ProviderOf => {
                    next |= DOWN;
                }
            }
        }
        if next == 0 {
            return false; // no edge admits this step (or no edge at all)
        }
        stages = next;
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use ipv6web_topology::{generate, AsNode, LinkProps, Region, Tier, Topology, TopologyConfig};

    /// Hand-built 6-AS topology:
    ///
    /// ```text
    ///        T0 ===== T1          (tier-1 peers)
    ///       /  \       \
    ///      A    B       C         (transit customers)
    ///      |             \
    ///      S              D       (stubs)
    /// ```
    /// ids: T0=0, T1=1, A=2, B=3, C=4, S=5, D=6
    fn hand_topology() -> Topology {
        let mk = |i: u32, tier: Tier| {
            let (v4, v6) = AsNode::address_plan(AsId(i));
            AsNode {
                id: AsId(i),
                tier,
                region: Region::Europe,
                v4_prefix: v4,
                v6: Some(ipv6web_topology::asys::V6Profile { prefix: v6, forwarding_factor: 1.0 }),
            }
        };
        let nodes = vec![
            mk(0, Tier::Tier1),
            mk(1, Tier::Tier1),
            mk(2, Tier::Transit),
            mk(3, Tier::Transit),
            mk(4, Tier::Transit),
            mk(5, Tier::Content),
            mk(6, Tier::Content),
        ];
        let mut t = Topology::new(nodes);
        let p = || LinkProps::new(10.0, 1000.0, 0.0);
        t.add_edge(AsId(0), AsId(1), Relationship::Peer, p(), true, true, None);
        t.add_edge(AsId(2), AsId(0), Relationship::CustomerOf, p(), true, true, None);
        t.add_edge(AsId(3), AsId(0), Relationship::CustomerOf, p(), true, true, None);
        t.add_edge(AsId(4), AsId(1), Relationship::CustomerOf, p(), true, true, None);
        t.add_edge(AsId(5), AsId(2), Relationship::CustomerOf, p(), true, true, None);
        t.add_edge(AsId(6), AsId(4), Relationship::CustomerOf, p(), true, true, None);
        t
    }

    #[test]
    fn dest_reaches_itself_with_zero_hops() {
        let t = hand_topology();
        let r = routes_to_dest(&t, AsId(5), Family::V4);
        let path = r.as_path(AsId(5)).unwrap();
        assert_eq!(path.hops(), 0);
        assert_eq!(r.kind(AsId(5)), Some(RouteKind::Customer));
    }

    #[test]
    fn provider_learns_customer_route() {
        let t = hand_topology();
        let r = routes_to_dest(&t, AsId(5), Family::V4);
        // A (2) hears from its customer S (5)
        assert_eq!(r.kind(AsId(2)), Some(RouteKind::Customer));
        assert_eq!(r.as_path(AsId(2)).unwrap().ases(), &[AsId(2), AsId(5)]);
        // T0 hears from customer A
        assert_eq!(r.kind(AsId(0)), Some(RouteKind::Customer));
        assert_eq!(r.as_path(AsId(0)).unwrap().ases(), &[AsId(0), AsId(2), AsId(5)]);
    }

    #[test]
    fn peer_route_crosses_tier1_boundary() {
        let t = hand_topology();
        let r = routes_to_dest(&t, AsId(5), Family::V4);
        // T1 (1) learns via its peer T0 (0)
        assert_eq!(r.kind(AsId(1)), Some(RouteKind::Peer));
        assert_eq!(r.as_path(AsId(1)).unwrap().ases(), &[AsId(1), AsId(0), AsId(2), AsId(5)]);
    }

    #[test]
    fn provider_route_descends_to_stub() {
        let t = hand_topology();
        let r = routes_to_dest(&t, AsId(5), Family::V4);
        // D (6) gets the route from its provider C (4), which got it from T1
        assert_eq!(r.kind(AsId(6)), Some(RouteKind::Provider));
        let path = r.as_path(AsId(6)).unwrap();
        assert_eq!(path.ases(), &[AsId(6), AsId(4), AsId(1), AsId(0), AsId(2), AsId(5)]);
        assert!(is_valley_free(&t, &path, Family::V4));
    }

    #[test]
    fn sibling_stub_path_through_shared_provider_chain() {
        let t = hand_topology();
        let r = routes_to_dest(&t, AsId(5), Family::V4);
        // B (3): customer of T0. Provider route T0->A->S
        let path = r.as_path(AsId(3)).unwrap();
        assert_eq!(path.ases(), &[AsId(3), AsId(0), AsId(2), AsId(5)]);
        assert_eq!(r.kind(AsId(3)), Some(RouteKind::Provider));
    }

    #[test]
    fn customer_route_preferred_over_shorter_peer_or_provider() {
        // T0 has customer route to S of 2 hops; even if a 1-hop peer route
        // existed it would lose. Construct: S also peers with T0 directly.
        let mut t = hand_topology();
        t.add_edge(
            AsId(5),
            AsId(0),
            Relationship::Peer,
            LinkProps::new(1.0, 1000.0, 0.0),
            true,
            true,
            None,
        );
        let r = routes_to_dest(&t, AsId(5), Family::V4);
        // T0's options: customer route via A (2 hops) vs peer route direct (1 hop).
        // Local pref wins: customer route.
        assert_eq!(r.kind(AsId(0)), Some(RouteKind::Customer));
        assert_eq!(r.as_path(AsId(0)).unwrap().hops(), 2);
    }

    #[test]
    fn unreachable_when_family_missing_edges() {
        let mk = |i: u32, dual: bool| {
            let (v4, v6) = AsNode::address_plan(AsId(i));
            AsNode {
                id: AsId(i),
                tier: Tier::Transit,
                region: Region::Asia,
                v4_prefix: v4,
                v6: dual.then_some(ipv6web_topology::asys::V6Profile {
                    prefix: v6,
                    forwarding_factor: 1.0,
                }),
            }
        };
        let mut t = Topology::new(vec![mk(0, true), mk(1, false), mk(2, true)]);
        let p = || LinkProps::new(5.0, 100.0, 0.0);
        // chain 0 - 1 - 2, but 1 is v4-only: v6 cannot transit it.
        t.add_edge(AsId(0), AsId(1), Relationship::CustomerOf, p(), true, false, None);
        t.add_edge(AsId(1), AsId(2), Relationship::ProviderOf, p(), true, false, None);
        let r4 = routes_to_dest(&t, AsId(2), Family::V4);
        assert!(r4.reachable_from(AsId(0)));
        let r6 = routes_to_dest(&t, AsId(2), Family::V6);
        assert!(!r6.reachable_from(AsId(0)));
    }

    #[test]
    fn valley_free_rejects_peer_after_down() {
        let t = hand_topology();
        // path S(5) -> A(2) -> T0(0) -> T1(1) is up,up,peer — fine
        let ok = AsPath::new(vec![AsId(5), AsId(2), AsId(0), AsId(1)]);
        assert!(is_valley_free(&t, &ok, Family::V4));
        // path T0 -> A -> S is down,down — fine
        let down = AsPath::new(vec![AsId(0), AsId(2), AsId(5)]);
        assert!(is_valley_free(&t, &down, Family::V4));
        // path A(2) -> T0(0) -> B(3) -> ... then back up is a valley:
        // A->T0 is up, T0->B is down, B->T0 up again => invalid
        let valley = AsPath::new(vec![AsId(2), AsId(0), AsId(3), AsId(0)]);
        // (note: repeated AS would panic in AsPath::new; use a real valley)
        let _ = valley;
        // real valley: S(5)->A(2) up, A->T0 up, T0->B(3) down, then B->T0? repeated.
        // Use: B(3) -> T0(0) -> A(2) -> S(5): up, down, down — valid.
        // Construct invalid: T0(0) -> A(2) down then A -> T0? repeated again.
        // Simplest invalid: D(6) -> C(4) ... C is D's provider: D->C is up. fine.
        // Peer edge not at apex: S->T0 peer added in another test only. Here just
        // check non-adjacent pair fails:
        let broken = AsPath::new(vec![AsId(5), AsId(6)]);
        assert!(!is_valley_free(&t, &broken, Family::V4), "no such edge");
    }

    #[test]
    fn valley_free_handles_parallel_edges_with_different_relationships() {
        // The shape behind the pinned policy_properties regression: a
        // stranded dual-stack transit tunnels (as a customer) to a transit
        // it ALSO peers with natively. The up-up-peer route through the
        // tunnel is valley-free; a checker that only looks at the first
        // edge between the pair sees the peer edge and wrongly flags it.
        let mk = |i: u32, tier: Tier| {
            let (v4, v6) = AsNode::address_plan(AsId(i));
            AsNode {
                id: AsId(i),
                tier,
                region: Region::Europe,
                v4_prefix: v4,
                v6: Some(ipv6web_topology::asys::V6Profile { prefix: v6, forwarding_factor: 1.0 }),
            }
        };
        // 0,1 tier-1 peers; 2,3 transits; 3 is a customer of 1 natively,
        // while 2 and 3 peer AND 3 tunnels to 2 as a customer.
        let nodes = vec![
            mk(0, Tier::Tier1),
            mk(1, Tier::Tier1),
            mk(2, Tier::Transit),
            mk(3, Tier::Transit),
        ];
        let mut t = Topology::new(nodes);
        let p = || LinkProps::new(10.0, 1000.0, 0.0);
        t.add_edge(AsId(0), AsId(1), Relationship::Peer, p(), true, true, None);
        t.add_edge(AsId(2), AsId(1), Relationship::CustomerOf, p(), true, true, None);
        t.add_edge(AsId(3), AsId(2), Relationship::Peer, p(), true, true, None);
        t.add_edge(
            AsId(3),
            AsId(2),
            Relationship::CustomerOf,
            p(),
            false,
            true,
            Some(ipv6web_topology::graph::TunnelInfo { hidden_hops: 3, extra_delay_ms: 40.0 }),
        );
        // 3 -> 2 (up, via tunnel) -> 1 (up) -> 0 (peer): valley-free.
        let path = AsPath::new(vec![AsId(3), AsId(2), AsId(1), AsId(0)]);
        assert!(is_valley_free(&t, &path, Family::V6), "tunnel up-path wrongly flagged");
        // And the route engine actually produces that path for dest 0.
        let r = routes_to_dest(&t, AsId(0), Family::V6);
        assert_eq!(r.as_path(AsId(3)).unwrap().ases(), &[AsId(3), AsId(2), AsId(1), AsId(0)]);
        // A genuine valley is still rejected: 1 -> 2 (down) -> 3 (down via
        // provider edge) then back up 3 -> 2 exists only with repeats; use
        // peer-after-down instead: 0 -> 1 (peer) -> 2 (down) is fine, but
        // 2 -> 3 peer after down must fail when reached through the peer
        // stage only. Build the check directly: down then peer.
        let down_then_peer = AsPath::new(vec![AsId(1), AsId(2), AsId(3)]);
        // 1->2: 1 is provider of 2 (down). 2->3: peer edge AND provider
        // edge (tunnel, from 2's view ProviderOf) exist — the provider
        // reading keeps it valley-free, the peer reading alone would not.
        assert!(is_valley_free(&t, &down_then_peer, Family::V6));
    }

    #[test]
    fn generated_topology_paths_are_valley_free_and_complete() {
        let topo = generate(&TopologyConfig::test_small(), 11);
        // all v4 routes to a handful of destinations, from every AS
        for dest in [AsId(50), AsId(120), AsId(250)] {
            let r = routes_to_dest(&topo, dest, Family::V4);
            for src in 0..topo.num_ases() as u32 {
                let src = AsId(src);
                let path = r.as_path(src).expect("v4 fully connected => reachable");
                assert!(is_valley_free(&topo, &path, Family::V4), "path {path} not valley-free");
                assert_eq!(path.source(), src);
                assert_eq!(path.dest(), dest);
                // edge path consistent with as path
                let edges = r.edge_path(src).unwrap();
                assert_eq!(edges.len(), path.hops());
            }
        }
    }

    #[test]
    fn v6_paths_valley_free_where_reachable() {
        let topo = generate(&TopologyConfig::test_small(), 13);
        let dual: Vec<AsId> =
            topo.nodes().iter().filter(|n| n.is_dual_stack()).map(|n| n.id).take(5).collect();
        for &dest in &dual {
            let r = routes_to_dest(&topo, dest, Family::V6);
            for n in topo.nodes().iter().filter(|n| n.is_dual_stack()) {
                if let Some(path) = r.as_path(n.id) {
                    assert!(
                        is_valley_free(&topo, &path, Family::V6),
                        "v6 path {path} not valley-free"
                    );
                }
            }
        }
    }

    #[test]
    fn all_dual_stack_ases_reach_dual_dest_in_v6() {
        // The generator stitches v6 islands, so the dual-stack subgraph is
        // connected AND policy routing must find a route (tunnels are
        // customer edges, preserving valley-freeness).
        let topo = generate(&TopologyConfig::test_small(), 17);
        let dual: Vec<AsId> =
            topo.nodes().iter().filter(|n| n.is_dual_stack()).map(|n| n.id).collect();
        let dest = *dual.last().unwrap();
        let r = routes_to_dest(&topo, dest, Family::V6);
        let unreachable: Vec<AsId> =
            dual.iter().copied().filter(|&a| !r.reachable_from(a)).collect();
        // The generator guarantees every dual-stack AS has a v6 up-path to
        // the tier-1 mesh, which makes full dual-stack reachability a
        // theorem, not a tendency.
        assert!(
            unreachable.is_empty(),
            "{}/{} dual ASes cannot route in v6: {unreachable:?}",
            unreachable.len(),
            dual.len()
        );
    }

    #[test]
    fn corrupt_route_chain_degrades_to_unreachable() {
        // Hand-built damaged tables — shapes the computation never emits,
        // but a walker must survive: a next-hop cycle (0 -> 1 -> 0 with
        // dest 2), a chain into a missing entry, and a non-dest entry
        // without a next hop.
        let cycle = RoutesToDest::from_entries(
            AsId(2),
            Family::V4,
            &[
                Some(Entry {
                    kind: RouteKind::Provider,
                    hops: 1,
                    next: Some((AsId(1), EdgeId(0))),
                }),
                Some(Entry {
                    kind: RouteKind::Provider,
                    hops: 1,
                    next: Some((AsId(0), EdgeId(1))),
                }),
                Some(Entry { kind: RouteKind::Customer, hops: 0, next: None }),
            ],
        );
        assert_eq!(cycle.as_path(AsId(0)), None);
        assert_eq!(cycle.edge_path(AsId(0)), None);
        assert!(cycle.as_path(AsId(2)).is_some(), "dest itself still resolves");

        let broken_link = RoutesToDest::from_entries(
            AsId(2),
            Family::V4,
            &[
                Some(Entry {
                    kind: RouteKind::Provider,
                    hops: 2,
                    next: Some((AsId(1), EdgeId(0))),
                }),
                None, // chain steps into a hole
                Some(Entry { kind: RouteKind::Customer, hops: 0, next: None }),
            ],
        );
        assert_eq!(broken_link.as_path(AsId(0)), None);
        assert_eq!(broken_link.edge_path(AsId(0)), None);

        let no_next = RoutesToDest::from_entries(
            AsId(2),
            Family::V4,
            &[
                Some(Entry { kind: RouteKind::Provider, hops: 1, next: None }),
                None,
                Some(Entry { kind: RouteKind::Customer, hops: 0, next: None }),
            ],
        );
        assert_eq!(no_next.as_path(AsId(0)), None);
        assert_eq!(no_next.edge_path(AsId(0)), None);
    }

    #[test]
    fn deterministic_tie_break() {
        let t = hand_topology();
        let r1 = routes_to_dest(&t, AsId(5), Family::V4);
        let r2 = routes_to_dest(&t, AsId(5), Family::V4);
        for i in 0..7u32 {
            assert_eq!(r1.as_path(AsId(i)), r2.as_path(AsId(i)));
        }
    }
}
