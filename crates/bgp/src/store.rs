//! Memoized per-destination route computations, shared across vantage
//! points and route-change epochs.
//!
//! [`routes_to_dest`] is the expensive step of table construction, and its
//! result is vantage-independent: one computation answers every vantage
//! point's query for that destination. [`RouteStore`] holds those results
//! — one per `(dest, family)` — so the six vantage points of Table 1 share
//! them, and the mid-campaign route-change snapshot recomputes only the
//! destinations the flipped edges can actually affect.
//!
//! Destinations fan out in parallel via `ipv6web_par::par_map`, which
//! preserves input order; results land in a `BTreeMap` keyed by
//! destination, so the store (and every table derived from it) is
//! bit-identical regardless of worker count.

use crate::compute::{routes_to_dest, RoutesToDest};
use crate::path::AsPath;
use crate::table::BgpTable;
use ipv6web_topology::{AsId, EdgeId, Family, Topology};
use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;

/// Best-route computations for a set of destinations in one family.
#[derive(Debug, Clone)]
pub struct RouteStore {
    family: Family,
    routes: BTreeMap<AsId, Arc<RoutesToDest>>,
}

impl RouteStore {
    /// Computes routes for every destination in `dests` (duplicates are
    /// collapsed), fanning out across worker threads.
    pub fn build(topo: &Topology, family: Family, dests: &[AsId]) -> Self {
        let uniq: Vec<AsId> = dests.iter().copied().collect::<BTreeSet<_>>().into_iter().collect();
        let computed =
            ipv6web_par::par_map(&uniq, |_, &dest| Arc::new(routes_to_dest(topo, dest, family)));
        RouteStore { family, routes: uniq.into_iter().zip(computed).collect() }
    }

    /// The family this store covers.
    pub fn family(&self) -> Family {
        self.family
    }

    /// Number of memoized destinations.
    pub fn len(&self) -> usize {
        self.routes.len()
    }

    /// True when the store holds no destinations.
    pub fn is_empty(&self) -> bool {
        self.routes.is_empty()
    }

    /// The memoized computation for `dest`, if present.
    pub fn get(&self, dest: AsId) -> Option<&Arc<RoutesToDest>> {
        self.routes.get(&dest)
    }

    /// Snapshots one vantage point's table from the shared computations.
    pub fn table_for(&self, vantage_as: AsId) -> BgpTable {
        ipv6web_obs::inc("bgp.tables_built");
        ipv6web_obs::add("bgp.store.route_lookups", self.routes.len() as u64);
        let mut table = BgpTable::empty(vantage_as, self.family);
        for (&dest, r) in &self.routes {
            if let (Some(as_path), Some(edges)) = (r.as_path(vantage_as), r.edge_path(vantage_as)) {
                table.push_route(dest, as_path.ases(), &edges);
            }
        }
        table
    }

    /// Tables for several vantage points, each a view over the same
    /// memoized computations.
    pub fn tables_for(&self, vantage_ases: &[AsId]) -> Vec<BgpTable> {
        vantage_ases.iter().map(|&v| self.table_for(v)).collect()
    }

    /// Builds every vantage point's table **without retaining the per-AS
    /// route computations**: each destination's routes are computed (in
    /// parallel), the handful of vantage-point entries extracted, and the
    /// ~`13 bytes × |ASes|` computation dropped before the next
    /// destination lands.
    ///
    /// At the internet tier (~37k ASes, thousands of hosting ASes) a
    /// retained [`RouteStore`] would hold gigabytes; the streamed build
    /// peaks at one in-flight computation per worker thread while
    /// producing tables bit-identical to
    /// [`RouteStore::build`]`.tables_for(...)`. The trade: there is no
    /// store left to memoize a route-change epoch from — epoch tables
    /// must be streamed again from the flipped topology.
    pub fn stream_tables(
        topo: &Topology,
        family: Family,
        dests: &[AsId],
        vantage_ases: &[AsId],
    ) -> Vec<BgpTable> {
        let uniq: Vec<AsId> = dests.iter().copied().collect::<BTreeSet<_>>().into_iter().collect();
        type VantageRoutes = Vec<Option<(AsPath, Vec<EdgeId>)>>;
        let per_dest: Vec<VantageRoutes> = ipv6web_par::par_map(&uniq, |_, &dest| {
            let r = routes_to_dest(topo, dest, family);
            vantage_ases
                .iter()
                .map(|&v| match (r.as_path(v), r.edge_path(v)) {
                    (Some(p), Some(e)) => Some((p, e)),
                    _ => None,
                })
                .collect()
        });
        ipv6web_obs::add("bgp.store.streamed_dests", uniq.len() as u64);
        vantage_ases
            .iter()
            .enumerate()
            .map(|(vi, &v)| {
                ipv6web_obs::inc("bgp.tables_built");
                let mut table = BgpTable::empty(v, family);
                for (di, &dest) in uniq.iter().enumerate() {
                    if let Some((p, e)) = &per_dest[di][vi] {
                        table.push_route(dest, p.ases(), e);
                    }
                }
                table
            })
            .collect()
    }

    /// The store for the post-event topology `late` (the same graph with
    /// `gains` edges added to this family and `losses` removed), reusing
    /// every computation the flips cannot affect.
    ///
    /// A destination must be recomputed only when:
    ///
    /// * a **lost** edge appears in its installed route tree — removing any
    ///   other edge leaves every best route intact (nothing new appears,
    ///   and no installed route breaks); or
    /// * a **gained** edge endpoint had a route to it before the event.
    ///   Any new path must cross a gained edge; past its last gained edge
    ///   (nearest the destination) it walks pre-event edges only, and that
    ///   suffix is itself a valley-free route — so the endpoint was already
    ///   reachable in the old store. Destinations failing this test (v4-only
    ///   islands included) keep their old result untouched.
    ///
    /// Returns the rebuilt store and how many destinations were recomputed.
    pub fn rebuild_with_flips(
        &self,
        late: &Topology,
        gains: &[EdgeId],
        losses: &[EdgeId],
    ) -> (RouteStore, usize) {
        let loss_set: BTreeSet<EdgeId> = losses.iter().copied().collect();
        let gain_ends: BTreeSet<AsId> = gains
            .iter()
            .flat_map(|&eid| {
                let e = late.edge(eid);
                [e.a, e.b]
            })
            .collect();

        let mut kept: BTreeMap<AsId, Arc<RoutesToDest>> = BTreeMap::new();
        let mut stale: Vec<AsId> = Vec::new();
        for (&dest, r) in &self.routes {
            let hit_by_loss = !loss_set.is_empty() && r.uses_any_edge(&loss_set);
            let hit_by_gain = gain_ends.iter().any(|&x| r.reachable_from(x));
            if hit_by_loss || hit_by_gain {
                stale.push(dest);
            } else {
                kept.insert(dest, Arc::clone(r));
            }
        }

        let recomputed = stale.len();
        ipv6web_obs::add("bgp.epoch.reused", kept.len() as u64);
        ipv6web_obs::add("bgp.epoch.recomputed", recomputed as u64);
        let fresh = ipv6web_par::par_map(&stale, |_, &dest| {
            Arc::new(routes_to_dest(late, dest, self.family))
        });
        kept.extend(stale.into_iter().zip(fresh));
        (RouteStore { family: self.family, routes: kept }, recomputed)
    }

    /// Applies a sequence of flip `events` (gains, losses) cumulatively:
    /// each event's topology and store build on the previous event's
    /// result. Returns one `(topology, store, recomputed)` per event, in
    /// order — the memoization chain for a campaign with several routing
    /// epochs (the scenario's scheduled route change plus any injected BGP
    /// session flaps). A single event is exactly
    /// [`Topology::with_v6_flips`] + [`RouteStore::rebuild_with_flips`].
    pub fn rebuild_sequence(
        &self,
        topo: &Topology,
        events: &[(Vec<EdgeId>, Vec<EdgeId>)],
    ) -> Vec<(Topology, RouteStore, usize)> {
        let mut out: Vec<(Topology, RouteStore, usize)> = Vec::with_capacity(events.len());
        for (gains, losses) in events {
            let next = {
                let (prev_topo, prev_store) = out.last().map_or((topo, self), |(t, s, _)| (t, s));
                let late = prev_topo.with_v6_flips(gains, losses);
                let (store, n) = prev_store.rebuild_with_flips(&late, gains, losses);
                (late, store, n)
            };
            out.push(next);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ipv6web_topology::{generate, Tier, TopologyConfig};

    fn world() -> (Topology, Vec<AsId>, Vec<AsId>) {
        let topo = generate(&TopologyConfig::test_small(), 17);
        let dests: Vec<AsId> =
            topo.nodes().iter().filter(|n| n.tier == Tier::Content).map(|n| n.id).collect();
        let vantages: Vec<AsId> = topo
            .nodes()
            .iter()
            .filter(|n| n.tier == Tier::Access && n.is_dual_stack())
            .map(|n| n.id)
            .take(4)
            .collect();
        (topo, dests, vantages)
    }

    #[test]
    fn tables_match_direct_builds() {
        let (topo, dests, vantages) = world();
        for family in [Family::V4, Family::V6] {
            let store = RouteStore::build(&topo, family, &dests);
            for &v in &vantages {
                let direct = BgpTable::build(&topo, v, family, &dests);
                let via_store = store.table_for(v);
                assert_eq!(via_store.len(), direct.len());
                for r in direct.iter() {
                    assert_eq!(via_store.route(r.dest), Some(r), "family {family:?}");
                }
            }
        }
    }

    #[test]
    fn duplicate_dests_collapse() {
        let (topo, dests, _) = world();
        let mut doubled = dests.clone();
        doubled.extend_from_slice(&dests);
        let a = RouteStore::build(&topo, Family::V4, &dests);
        let b = RouteStore::build(&topo, Family::V4, &doubled);
        assert_eq!(a.len(), b.len());
    }

    #[test]
    fn rebuild_matches_from_scratch_on_flips() {
        let (topo, dests, vantages) = world();
        let store = RouteStore::build(&topo, Family::V6, &dests);

        // flip a handful of eligible edges, as the route-change event does
        let gains: Vec<EdgeId> = topo
            .edges()
            .iter()
            .filter(|e| {
                e.v4 && !e.v6 && topo.node(e.a).is_dual_stack() && topo.node(e.b).is_dual_stack()
            })
            .map(|e| e.id)
            .take(3)
            .collect();
        let losses: Vec<EdgeId> = topo
            .edges()
            .iter()
            .filter(|e| e.v6 && e.v4 && e.tunnel.is_none())
            .map(|e| e.id)
            .take(2)
            .collect();
        assert!(!gains.is_empty() || !losses.is_empty(), "need some flips to exercise");

        let late = topo.with_v6_flips(&gains, &losses);
        let (rebuilt, recomputed) = store.rebuild_with_flips(&late, &gains, &losses);
        assert!(recomputed <= store.len());

        let _ = vantages;
        // equivalence must hold from EVERY AS, not just the vantage points
        let scratch = RouteStore::build(&late, Family::V6, &dests);
        for v in topo.nodes().iter().map(|n| n.id) {
            let a = rebuilt.table_for(v);
            let b = scratch.table_for(v);
            assert_eq!(a.len(), b.len(), "vantage {v:?}");
            for r in b.iter() {
                assert_eq!(a.route(r.dest), Some(r), "vantage {v:?}");
            }
        }
    }

    #[test]
    fn rebuild_sequence_chains_cumulatively() {
        let (topo, dests, _) = world();
        let store = RouteStore::build(&topo, Family::V6, &dests);
        let gains: Vec<EdgeId> = topo
            .edges()
            .iter()
            .filter(|e| {
                e.v4 && !e.v6 && topo.node(e.a).is_dual_stack() && topo.node(e.b).is_dual_stack()
            })
            .map(|e| e.id)
            .take(4)
            .collect();
        assert!(gains.len() >= 2, "need at least two eligible edges");
        let (first, second) = (vec![gains[0], gains[1]], gains[2..].to_vec());

        let chain =
            store.rebuild_sequence(&topo, &[(first.clone(), vec![]), (second.clone(), vec![])]);
        assert_eq!(chain.len(), 2);

        // the single-event entry matches the direct call exactly
        let late1 = topo.with_v6_flips(&first, &[]);
        let (direct1, n1) = store.rebuild_with_flips(&late1, &first, &[]);
        assert_eq!(chain[0].2, n1);
        assert_eq!(chain[0].1.len(), direct1.len());

        // the second entry equals a from-scratch build on both events' flips
        let all: Vec<EdgeId> = first.iter().chain(&second).copied().collect();
        let late2 = topo.with_v6_flips(&all, &[]);
        let scratch = RouteStore::build(&late2, Family::V6, &dests);
        for v in topo.nodes().iter().map(|n| n.id) {
            let a = chain[1].1.table_for(v);
            let b = scratch.table_for(v);
            assert_eq!(a.len(), b.len(), "vantage {v:?}");
            for r in b.iter() {
                assert_eq!(a.route(r.dest), Some(r), "vantage {v:?}");
            }
        }
    }

    #[test]
    fn rebuild_with_no_flips_reuses_everything() {
        let (topo, dests, _) = world();
        let store = RouteStore::build(&topo, Family::V6, &dests);
        let late = topo.with_v6_flips(&[], &[]);
        let (rebuilt, recomputed) = store.rebuild_with_flips(&late, &[], &[]);
        assert_eq!(recomputed, 0, "no flips, no recomputation");
        assert_eq!(rebuilt.len(), store.len());
        for (dest, r) in &store.routes {
            assert!(
                Arc::ptr_eq(r, &rebuilt.routes[dest]),
                "untouched results must be shared, not recomputed"
            );
        }
    }
}
