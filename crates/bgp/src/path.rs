//! AS-level paths.

use ipv6web_topology::AsId;
use serde::{Deserialize, Serialize};
use std::fmt;

/// An AS-level path from a source AS to a destination AS, inclusive of both
/// endpoints (so a direct adjacency has length 2 and hop count 1).
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct AsPath(Vec<AsId>);

impl AsPath {
    /// Builds a path from the ordered list of ASes (source first).
    ///
    /// # Panics
    /// Panics on an empty list or repeated consecutive ASes (which BGP's
    /// loop detection would never produce).
    pub fn new(ases: Vec<AsId>) -> Self {
        assert!(!ases.is_empty(), "empty AS path");
        for w in ases.windows(2) {
            assert_ne!(w[0], w[1], "repeated AS in path");
        }
        AsPath(ases)
    }

    /// Fallible [`AsPath::new`]: `None` on an empty list or repeated
    /// consecutive ASes. For callers reconstructing paths from data that
    /// might be corrupt (e.g. a damaged routing table) rather than from
    /// the route computation itself.
    pub fn try_new(ases: Vec<AsId>) -> Option<Self> {
        if ases.is_empty() || ases.windows(2).any(|w| w[0] == w[1]) {
            return None;
        }
        Some(AsPath(ases))
    }

    /// Source AS (the vantage point's AS).
    pub fn source(&self) -> AsId {
        self.0[0]
    }

    /// Destination (origin) AS.
    pub fn dest(&self) -> AsId {
        *self.0.last().expect("non-empty")
    }

    /// Number of AS hops (edges). A path within one AS has 0 hops.
    pub fn hops(&self) -> usize {
        self.0.len() - 1
    }

    /// All ASes in order, source first.
    pub fn ases(&self) -> &[AsId] {
        &self.0
    }

    /// Whether the path traverses `asn` (including endpoints).
    pub fn contains(&self, asn: AsId) -> bool {
        self.0.contains(&asn)
    }

    /// The ASes *crossed* by the path: everything except the source
    /// (the paper's Table 2 counts destination ASes as crossed).
    pub fn crossed(&self) -> &[AsId] {
        &self.0[1..]
    }

    /// True if both paths visit exactly the same ASes in the same order —
    /// the paper's SP (same path) criterion.
    pub fn same_route(&self, other: &AsPath) -> bool {
        self.0 == other.0
    }

    /// Borrowed view of this path.
    pub fn as_ref(&self) -> AsPathRef<'_> {
        AsPathRef(&self.0)
    }
}

impl fmt::Display for AsPath {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.as_ref().fmt(f)
    }
}

/// A borrowed AS-level path — the same invariants and vocabulary as
/// [`AsPath`], over a slice interned in a routing-table arena instead of
/// a per-route allocation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct AsPathRef<'a>(&'a [AsId]);

impl<'a> AsPathRef<'a> {
    /// Wraps an interned symbol run. Callers must uphold the [`AsPath`]
    /// invariants (non-empty, no repeated consecutive AS).
    pub(crate) fn from_symbols(ases: &'a [AsId]) -> Self {
        debug_assert!(!ases.is_empty(), "empty AS path");
        debug_assert!(ases.windows(2).all(|w| w[0] != w[1]), "repeated AS in path");
        AsPathRef(ases)
    }

    /// Source AS (the vantage point's AS).
    pub fn source(&self) -> AsId {
        self.0[0]
    }

    /// Destination (origin) AS.
    pub fn dest(&self) -> AsId {
        *self.0.last().expect("non-empty")
    }

    /// Number of AS hops (edges). A path within one AS has 0 hops.
    pub fn hops(&self) -> usize {
        self.0.len() - 1
    }

    /// All ASes in order, source first.
    pub fn ases(&self) -> &'a [AsId] {
        self.0
    }

    /// Whether the path traverses `asn` (including endpoints).
    pub fn contains(&self, asn: AsId) -> bool {
        self.0.contains(&asn)
    }

    /// The ASes *crossed* by the path: everything except the source
    /// (the paper's Table 2 counts destination ASes as crossed).
    pub fn crossed(&self) -> &'a [AsId] {
        &self.0[1..]
    }

    /// True if both paths visit exactly the same ASes in the same order —
    /// the paper's SP (same path) criterion.
    pub fn same_route(&self, other: AsPathRef<'_>) -> bool {
        self.0 == other.0
    }

    /// Copies the view into an owned [`AsPath`].
    pub fn to_owned(&self) -> AsPath {
        AsPath(self.0.to_vec())
    }
}

impl fmt::Display for AsPathRef<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let parts: Vec<String> = self.0.iter().map(|a| a.to_string()).collect();
        write!(f, "{}", parts.join(" "))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(ids: &[u32]) -> AsPath {
        AsPath::new(ids.iter().map(|&i| AsId(i)).collect())
    }

    #[test]
    fn endpoints_and_hops() {
        let path = p(&[1, 5, 9]);
        assert_eq!(path.source(), AsId(1));
        assert_eq!(path.dest(), AsId(9));
        assert_eq!(path.hops(), 2);
    }

    #[test]
    fn single_as_path_zero_hops() {
        let path = p(&[3]);
        assert_eq!(path.source(), path.dest());
        assert_eq!(path.hops(), 0);
        assert!(path.crossed().is_empty());
    }

    #[test]
    fn crossed_excludes_source() {
        let path = p(&[1, 5, 9]);
        assert_eq!(path.crossed(), &[AsId(5), AsId(9)]);
    }

    #[test]
    fn contains_checks_membership() {
        let path = p(&[1, 5, 9]);
        assert!(path.contains(AsId(5)));
        assert!(!path.contains(AsId(7)));
    }

    #[test]
    fn same_route_is_exact_sequence_equality() {
        assert!(p(&[1, 5, 9]).same_route(&p(&[1, 5, 9])));
        assert!(!p(&[1, 5, 9]).same_route(&p(&[1, 6, 9])));
        assert!(!p(&[1, 5, 9]).same_route(&p(&[1, 9])));
    }

    #[test]
    fn display_joins_as_numbers() {
        assert_eq!(p(&[0, 2]).to_string(), "AS1000 AS1002");
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn empty_path_panics() {
        AsPath::new(vec![]);
    }

    #[test]
    fn try_new_rejects_what_new_panics_on() {
        assert_eq!(AsPath::try_new(vec![]), None);
        assert_eq!(AsPath::try_new(vec![AsId(1), AsId(1), AsId(2)]), None);
        let ok = AsPath::try_new(vec![AsId(1), AsId(5)]).expect("valid path");
        assert_eq!(ok, p(&[1, 5]));
    }

    #[test]
    #[should_panic(expected = "repeated")]
    fn repeated_as_panics() {
        p(&[1, 1, 2]);
    }
}
