//! BGP control plane over the simulated topology.
//!
//! The paper correlates per-site performance with **AS-level paths pulled
//! from BGP routing tables** of routers near each vantage point (Section 3).
//! This crate computes those tables from first principles with the standard
//! Gao–Rexford policy model:
//!
//! * **Export (valley-free)**: routes learned from customers are exported to
//!   everyone; routes learned from peers or providers are exported only to
//!   customers. A resulting path is a sequence of "up" (customer→provider)
//!   edges, at most one peer edge, then "down" (provider→customer) edges.
//! * **Selection**: prefer customer-learned over peer-learned over
//!   provider-learned routes (local preference), then shortest AS path,
//!   then lowest next-hop AS id (deterministic tie-break).
//!
//! Route computation runs per destination over the per-family subgraph and
//! yields the best route *from every AS at once*; [`BgpTable`] then snapshots
//! the view of one vantage-point router, which is what the monitor consumes.

pub mod compute;
pub mod dump;
pub mod path;
pub mod store;
pub mod table;

pub use compute::{routes_to_dest, RouteKind, RoutesToDest};
pub use dump::{dump, parse_dump, DumpParseError};
pub use path::{AsPath, AsPathRef};
pub use store::RouteStore;
pub use table::{BgpTable, RouteRef};
