//! Router-style table dumps.
//!
//! The paper's operators pulled `AS_PATH`s by dumping the routing table of
//! a router near each monitor ("we had access to the BGP routing tables of
//! one of the routers in the GigaPoP"). This module renders a [`BgpTable`]
//! the way such a dump reads — one line per destination with its AS path —
//! and parses the format back, so table snapshots can be archived as plain
//! text and re-ingested (the workflow the paper's repository used).

use crate::path::AsPath;
use crate::table::BgpTable;
use ipv6web_topology::{AsId, Family};

/// Renders the table as a `show ip bgp`-flavoured dump:
///
/// ```text
/// # vantage AS1077 family IPv6 entries 42
/// AS1203  AS1077 AS1046 AS1203
/// ...
/// ```
pub fn dump(table: &BgpTable) -> String {
    let mut out =
        format!("# vantage {} family {} entries {}\n", table.vantage_as, table.family, table.len());
    for route in table.iter() {
        out.push_str(&format!("{}  {}\n", route.dest, route.as_path));
    }
    out
}

/// Errors from [`parse_dump`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DumpParseError {
    /// The header line is missing or malformed.
    BadHeader,
    /// A data line could not be parsed (payload = line number, 1-based).
    BadLine(usize),
    /// The entry count in the header does not match the body.
    CountMismatch {
        /// Count promised by the header.
        expected: usize,
        /// Lines actually present.
        got: usize,
    },
}

impl std::fmt::Display for DumpParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DumpParseError::BadHeader => write!(f, "missing or malformed dump header"),
            DumpParseError::BadLine(n) => write!(f, "malformed dump line {n}"),
            DumpParseError::CountMismatch { expected, got } => {
                write!(f, "header promises {expected} entries, found {got}")
            }
        }
    }
}

impl std::error::Error for DumpParseError {}

fn parse_as(tok: &str) -> Option<AsId> {
    let n: u32 = tok.strip_prefix("AS")?.parse().ok()?;
    n.checked_sub(1000).map(AsId)
}

/// Parses a dump produced by [`dump`] back into `(vantage, family, paths)`.
pub fn parse_dump(text: &str) -> Result<(AsId, Family, Vec<AsPath>), DumpParseError> {
    let mut lines = text.lines();
    let header = lines.next().ok_or(DumpParseError::BadHeader)?;
    let toks: Vec<&str> = header.split_whitespace().collect();
    // "# vantage ASx family IPvN entries K"
    if toks.len() != 7 || toks[0] != "#" || toks[1] != "vantage" || toks[3] != "family" {
        return Err(DumpParseError::BadHeader);
    }
    let vantage = parse_as(toks[2]).ok_or(DumpParseError::BadHeader)?;
    let family = match toks[4] {
        "IPv4" => Family::V4,
        "IPv6" => Family::V6,
        _ => return Err(DumpParseError::BadHeader),
    };
    let expected: usize = toks[6].parse().map_err(|_| DumpParseError::BadHeader)?;

    let mut paths = Vec::new();
    for (i, line) in lines.enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let mut toks = line.split_whitespace();
        let dest = toks.next().and_then(parse_as).ok_or(DumpParseError::BadLine(i + 2))?;
        let ases: Option<Vec<AsId>> = toks.map(parse_as).collect();
        let ases = ases.ok_or(DumpParseError::BadLine(i + 2))?;
        if ases.is_empty() || *ases.last().expect("non-empty") != dest {
            return Err(DumpParseError::BadLine(i + 2));
        }
        paths.push(AsPath::new(ases));
    }
    if paths.len() != expected {
        return Err(DumpParseError::CountMismatch { expected, got: paths.len() });
    }
    Ok((vantage, family, paths))
}

#[cfg(test)]
mod tests {
    use super::*;
    use ipv6web_topology::{generate, Tier, TopologyConfig};

    fn table() -> BgpTable {
        let topo = generate(&TopologyConfig::test_small(), 29);
        let vantage = topo.nodes().iter().find(|n| n.tier == Tier::Access).unwrap().id;
        let dests: Vec<AsId> = topo
            .nodes()
            .iter()
            .filter(|n| n.tier == Tier::Content)
            .map(|n| n.id)
            .take(25)
            .collect();
        BgpTable::build(&topo, vantage, Family::V4, &dests)
    }

    #[test]
    fn dump_roundtrips() {
        let t = table();
        let text = dump(&t);
        let (vantage, family, paths) = parse_dump(&text).unwrap();
        assert_eq!(vantage, t.vantage_as);
        assert_eq!(family, Family::V4);
        assert_eq!(paths.len(), t.len());
        for (parsed, route) in paths.iter().zip(t.iter()) {
            assert!(parsed.as_ref().same_route(route.as_path));
        }
    }

    #[test]
    fn header_carries_metadata() {
        let t = table();
        let text = dump(&t);
        let header = text.lines().next().unwrap();
        assert!(header.contains(&t.vantage_as.to_string()));
        assert!(header.contains("IPv4"));
        assert!(header.contains(&t.len().to_string()));
    }

    #[test]
    fn rejects_garbage_header() {
        assert_eq!(parse_dump(""), Err(DumpParseError::BadHeader));
        assert_eq!(parse_dump("hello world"), Err(DumpParseError::BadHeader));
        assert_eq!(
            parse_dump("# vantage AS1000 family IPv9 entries 0"),
            Err(DumpParseError::BadHeader)
        );
    }

    #[test]
    fn rejects_corrupt_line() {
        let t = table();
        let mut text = dump(&t);
        text.push_str("AS1005  banana\n");
        assert!(matches!(parse_dump(&text), Err(DumpParseError::BadLine(_))));
    }

    #[test]
    fn rejects_count_mismatch() {
        let t = table();
        let text = dump(&t);
        // drop the last data line
        let truncated: String = {
            let mut lines: Vec<&str> = text.lines().collect();
            lines.pop();
            lines.join("\n")
        };
        assert!(matches!(parse_dump(&truncated), Err(DumpParseError::CountMismatch { .. })));
    }

    #[test]
    fn rejects_dest_path_mismatch() {
        let text = "# vantage AS1000 family IPv4 entries 1\nAS1005  AS1000 AS1006\n";
        assert!(matches!(parse_dump(text), Err(DumpParseError::BadLine(2))));
    }
}
