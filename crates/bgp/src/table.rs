//! The vantage-point view: a BGP table snapshot.
//!
//! The paper reads `AS_PATH`s from "the (core) routing table of a router
//! close to the machine running the monitoring software" — e.g. Penn's
//! GigaPoP router. [`BgpTable`] is that artifact: the best routes of a
//! single AS toward a set of destinations, per family.
//!
//! Routes are stored columnar: one sorted destination column, two flat
//! symbol arenas (AS-path ids and edge ids), and per-route span offsets
//! into them. A route is therefore a [`RouteRef`] view over the arenas
//! rather than an owned struct — at the internet tier a study holds
//! `destinations × vantages × families × epochs` routes, and the arena
//! keeps that to a handful of allocations per table instead of two `Vec`s
//! per route.

use crate::compute::RouteKind;
use crate::path::AsPathRef;
use ipv6web_topology::{AsId, EdgeId, Family, Topology};

/// One installed route in a vantage point's table: a borrowed view over
/// the table's interned arenas.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RouteRef<'a> {
    /// Destination (origin) AS of the route.
    pub dest: AsId,
    /// The AS-level path, vantage AS first.
    pub as_path: AsPathRef<'a>,
    /// Edges traversed, in order — consumed by the data-plane simulator.
    pub edges: &'a [EdgeId],
}

impl RouteRef<'_> {
    /// AS hop count of the route.
    pub fn hops(&self) -> usize {
        self.as_path.hops()
    }
}

/// The routing table of one AS (the vantage point's upstream router) for
/// one address family, restricted to the destinations of interest.
#[derive(Debug, Clone)]
pub struct BgpTable {
    /// The AS whose view this is.
    pub vantage_as: AsId,
    /// Address family of the table.
    pub family: Family,
    /// Routed destinations, ascending.
    dests: Vec<AsId>,
    /// `path_starts[i]..path_starts[i+1]` spans route `i` in `path_arena`.
    path_starts: Vec<u32>,
    /// `edge_starts[i]..edge_starts[i+1]` spans route `i` in `edge_arena`.
    edge_starts: Vec<u32>,
    /// Interned AS-path symbols of every route, concatenated.
    path_arena: Vec<AsId>,
    /// Interned edge ids of every route, concatenated.
    edge_arena: Vec<EdgeId>,
}

impl BgpTable {
    /// An empty table ready for [`BgpTable::push_route`].
    pub(crate) fn empty(vantage_as: AsId, family: Family) -> Self {
        BgpTable {
            vantage_as,
            family,
            dests: Vec::new(),
            path_starts: vec![0],
            edge_starts: vec![0],
            path_arena: Vec::new(),
            edge_arena: Vec::new(),
        }
    }

    /// Appends a route. Destinations must arrive in ascending order (the
    /// builder walks a sorted destination set) so lookups can bisect.
    pub(crate) fn push_route(&mut self, dest: AsId, as_path: &[AsId], edges: &[EdgeId]) {
        debug_assert!(
            self.dests.last().is_none_or(|&d| d < dest),
            "routes must be pushed in ascending destination order"
        );
        debug_assert_eq!(as_path.len(), edges.len() + 1, "one edge per AS hop");
        self.dests.push(dest);
        self.path_arena.extend_from_slice(as_path);
        self.edge_arena.extend_from_slice(edges);
        let path_end = u32::try_from(self.path_arena.len()).expect("path arena fits u32 spans");
        let edge_end = u32::try_from(self.edge_arena.len()).expect("edge arena fits u32 spans");
        self.path_starts.push(path_end);
        self.edge_starts.push(edge_end);
    }

    fn route_at(&self, i: usize) -> RouteRef<'_> {
        let path = &self.path_arena[self.path_starts[i] as usize..self.path_starts[i + 1] as usize];
        let edges =
            &self.edge_arena[self.edge_starts[i] as usize..self.edge_starts[i + 1] as usize];
        RouteRef { dest: self.dests[i], as_path: AsPathRef::from_symbols(path), edges }
    }

    /// Builds the table by running per-destination route computation for
    /// every AS in `dests` (in parallel) and keeping the vantage point's
    /// entries.
    pub fn build(topo: &Topology, vantage_as: AsId, family: Family, dests: &[AsId]) -> Self {
        crate::store::RouteStore::build(topo, family, dests).table_for(vantage_as)
    }

    /// Builds tables for several vantage points while computing each
    /// destination's routes only once (the expensive step). Keep the
    /// [`crate::store::RouteStore`] instead when the computations should
    /// outlive the tables (e.g. to rebuild after a route-change event).
    pub fn build_many(
        topo: &Topology,
        vantage_ases: &[AsId],
        family: Family,
        dests: &[AsId],
    ) -> Vec<BgpTable> {
        crate::store::RouteStore::build(topo, family, dests).tables_for(vantage_ases)
    }

    /// The `AS_PATH` to `dest`, if routed.
    pub fn as_path(&self, dest: AsId) -> Option<AsPathRef<'_>> {
        self.route(dest).map(|r| r.as_path)
    }

    /// Full route entry to `dest`, if routed.
    pub fn route(&self, dest: AsId) -> Option<RouteRef<'_>> {
        let i = self.dests.binary_search(&dest).ok()?;
        Some(self.route_at(i))
    }

    /// Number of routed destinations.
    pub fn len(&self) -> usize {
        self.dests.len()
    }

    /// True when no destination is routed.
    pub fn is_empty(&self) -> bool {
        self.dests.is_empty()
    }

    /// Iterates over all routes in destination order.
    pub fn iter(&self) -> impl Iterator<Item = RouteRef<'_>> {
        (0..self.dests.len()).map(|i| self.route_at(i))
    }

    /// The set of distinct ASes crossed by any route in the table,
    /// destination ASes included, vantage AS excluded (Table 2 semantics).
    pub fn ases_crossed(&self) -> std::collections::BTreeSet<AsId> {
        self.iter().flat_map(|r| r.as_path.crossed().iter().copied()).collect()
    }
}

// re-export for doc linking convenience
pub use crate::compute::RouteKind as _RouteKindForDocs;
const _: Option<RouteKind> = None;

#[cfg(test)]
mod tests {
    use super::*;
    use ipv6web_topology::{generate, Tier, TopologyConfig};

    fn topo() -> ipv6web_topology::Topology {
        generate(&TopologyConfig::test_small(), 23)
    }

    #[test]
    fn table_contains_reachable_dests() {
        let t = topo();
        let dests: Vec<AsId> =
            t.nodes().iter().filter(|n| n.tier == Tier::Content).map(|n| n.id).take(20).collect();
        let vantage = t.nodes().iter().find(|n| n.tier == Tier::Access).unwrap().id;
        let table = BgpTable::build(&t, vantage, Family::V4, &dests);
        assert_eq!(table.len(), dests.len(), "v4 reaches everything");
        for r in table.iter() {
            assert_eq!(r.as_path.source(), vantage);
            assert_eq!(r.as_path.dest(), r.dest);
            assert_eq!(r.edges.len(), r.hops());
        }
    }

    #[test]
    fn v6_table_smaller_than_v4() {
        let t = topo();
        let dests: Vec<AsId> =
            t.nodes().iter().filter(|n| n.tier == Tier::Content).map(|n| n.id).collect();
        let vantage =
            t.nodes().iter().find(|n| n.tier == Tier::Access && n.is_dual_stack()).unwrap().id;
        let t4 = BgpTable::build(&t, vantage, Family::V4, &dests);
        let t6 = BgpTable::build(&t, vantage, Family::V6, &dests);
        assert!(t6.len() < t4.len(), "v6 {} !< v4 {}", t6.len(), t4.len());
        assert!(!t6.is_empty(), "some dual-stack content reachable");
    }

    #[test]
    fn build_many_matches_individual_builds() {
        let t = topo();
        let dests: Vec<AsId> =
            t.nodes().iter().filter(|n| n.tier == Tier::Content).map(|n| n.id).take(10).collect();
        let vantages: Vec<AsId> =
            t.nodes().iter().filter(|n| n.tier == Tier::Access).map(|n| n.id).take(3).collect();
        let many = BgpTable::build_many(&t, &vantages, Family::V4, &dests);
        for (i, &v) in vantages.iter().enumerate() {
            let single = BgpTable::build(&t, v, Family::V4, &dests);
            assert_eq!(many[i].len(), single.len());
            for r in single.iter() {
                assert_eq!(many[i].route(r.dest), Some(r));
            }
        }
    }

    #[test]
    fn ases_crossed_excludes_vantage_includes_dest() {
        let t = topo();
        let dests: Vec<AsId> =
            t.nodes().iter().filter(|n| n.tier == Tier::Content).map(|n| n.id).take(15).collect();
        let vantage = t.nodes().iter().find(|n| n.tier == Tier::Access).unwrap().id;
        let table = BgpTable::build(&t, vantage, Family::V4, &dests);
        let crossed = table.ases_crossed();
        assert!(!crossed.contains(&vantage));
        for r in table.iter() {
            assert!(crossed.contains(&r.dest));
        }
    }

    #[test]
    fn missing_dest_returns_none() {
        let t = topo();
        let vantage = t.nodes().iter().find(|n| n.tier == Tier::Access).unwrap().id;
        let table = BgpTable::build(&t, vantage, Family::V4, &[]);
        assert!(table.is_empty());
        assert_eq!(table.as_path(AsId(1)), None);
        assert_eq!(table.route(AsId(1)), None);
    }

    #[test]
    fn arena_spans_reconstruct_routes_exactly() {
        let t = topo();
        let dests: Vec<AsId> =
            t.nodes().iter().filter(|n| n.tier == Tier::Content).map(|n| n.id).take(30).collect();
        let vantage = t.nodes().iter().find(|n| n.tier == Tier::Access).unwrap().id;
        let table = BgpTable::build(&t, vantage, Family::V4, &dests);
        // arenas hold exactly the concatenation of every route, no gaps
        let total_path: usize = table.iter().map(|r| r.as_path.ases().len()).sum();
        let total_edges: usize = table.iter().map(|r| r.edges.len()).sum();
        assert_eq!(total_path, table.path_arena.len());
        assert_eq!(total_edges, table.edge_arena.len());
        // lookups agree with iteration
        for r in table.iter() {
            assert_eq!(table.route(r.dest), Some(r));
        }
    }
}
