//! The vantage-point view: a BGP table snapshot.
//!
//! The paper reads `AS_PATH`s from "the (core) routing table of a router
//! close to the machine running the monitoring software" — e.g. Penn's
//! GigaPoP router. [`BgpTable`] is that artifact: the best routes of a
//! single AS toward a set of destinations, per family.

use crate::compute::RouteKind;
use crate::path::AsPath;
use ipv6web_topology::{AsId, EdgeId, Family, Topology};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// One installed route in a vantage point's table.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Route {
    /// Destination (origin) AS of the route.
    pub dest: AsId,
    /// The AS-level path, vantage AS first.
    pub as_path: AsPath,
    /// Edges traversed, in order — consumed by the data-plane simulator.
    pub edges: Vec<EdgeId>,
}

impl Route {
    /// AS hop count of the route.
    pub fn hops(&self) -> usize {
        self.as_path.hops()
    }
}

/// The routing table of one AS (the vantage point's upstream router) for
/// one address family, restricted to the destinations of interest.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BgpTable {
    /// The AS whose view this is.
    pub vantage_as: AsId,
    /// Address family of the table.
    pub family: Family,
    pub(crate) routes: BTreeMap<AsId, Route>,
}

impl BgpTable {
    /// Builds the table by running per-destination route computation for
    /// every AS in `dests` (in parallel) and keeping the vantage point's
    /// entries.
    pub fn build(topo: &Topology, vantage_as: AsId, family: Family, dests: &[AsId]) -> Self {
        crate::store::RouteStore::build(topo, family, dests).table_for(vantage_as)
    }

    /// Builds tables for several vantage points while computing each
    /// destination's routes only once (the expensive step). Keep the
    /// [`crate::store::RouteStore`] instead when the computations should
    /// outlive the tables (e.g. to rebuild after a route-change event).
    pub fn build_many(
        topo: &Topology,
        vantage_ases: &[AsId],
        family: Family,
        dests: &[AsId],
    ) -> Vec<BgpTable> {
        crate::store::RouteStore::build(topo, family, dests).tables_for(vantage_ases)
    }

    /// The `AS_PATH` to `dest`, if routed.
    pub fn as_path(&self, dest: AsId) -> Option<&AsPath> {
        self.routes.get(&dest).map(|r| &r.as_path)
    }

    /// Full route entry to `dest`, if routed.
    pub fn route(&self, dest: AsId) -> Option<&Route> {
        self.routes.get(&dest)
    }

    /// Number of routed destinations.
    pub fn len(&self) -> usize {
        self.routes.len()
    }

    /// True when no destination is routed.
    pub fn is_empty(&self) -> bool {
        self.routes.is_empty()
    }

    /// Iterates over all routes in destination order.
    pub fn iter(&self) -> impl Iterator<Item = &Route> {
        self.routes.values()
    }

    /// The set of distinct ASes crossed by any route in the table,
    /// destination ASes included, vantage AS excluded (Table 2 semantics).
    pub fn ases_crossed(&self) -> std::collections::BTreeSet<AsId> {
        self.routes.values().flat_map(|r| r.as_path.crossed().iter().copied()).collect()
    }
}

// re-export for doc linking convenience
pub use crate::compute::RouteKind as _RouteKindForDocs;
const _: Option<RouteKind> = None;

#[cfg(test)]
mod tests {
    use super::*;
    use ipv6web_topology::{generate, Tier, TopologyConfig};

    fn topo() -> ipv6web_topology::Topology {
        generate(&TopologyConfig::test_small(), 23)
    }

    #[test]
    fn table_contains_reachable_dests() {
        let t = topo();
        let dests: Vec<AsId> =
            t.nodes().iter().filter(|n| n.tier == Tier::Content).map(|n| n.id).take(20).collect();
        let vantage = t.nodes().iter().find(|n| n.tier == Tier::Access).unwrap().id;
        let table = BgpTable::build(&t, vantage, Family::V4, &dests);
        assert_eq!(table.len(), dests.len(), "v4 reaches everything");
        for r in table.iter() {
            assert_eq!(r.as_path.source(), vantage);
            assert_eq!(r.as_path.dest(), r.dest);
            assert_eq!(r.edges.len(), r.hops());
        }
    }

    #[test]
    fn v6_table_smaller_than_v4() {
        let t = topo();
        let dests: Vec<AsId> =
            t.nodes().iter().filter(|n| n.tier == Tier::Content).map(|n| n.id).collect();
        let vantage =
            t.nodes().iter().find(|n| n.tier == Tier::Access && n.is_dual_stack()).unwrap().id;
        let t4 = BgpTable::build(&t, vantage, Family::V4, &dests);
        let t6 = BgpTable::build(&t, vantage, Family::V6, &dests);
        assert!(t6.len() < t4.len(), "v6 {} !< v4 {}", t6.len(), t4.len());
        assert!(!t6.is_empty(), "some dual-stack content reachable");
    }

    #[test]
    fn build_many_matches_individual_builds() {
        let t = topo();
        let dests: Vec<AsId> =
            t.nodes().iter().filter(|n| n.tier == Tier::Content).map(|n| n.id).take(10).collect();
        let vantages: Vec<AsId> =
            t.nodes().iter().filter(|n| n.tier == Tier::Access).map(|n| n.id).take(3).collect();
        let many = BgpTable::build_many(&t, &vantages, Family::V4, &dests);
        for (i, &v) in vantages.iter().enumerate() {
            let single = BgpTable::build(&t, v, Family::V4, &dests);
            assert_eq!(many[i].len(), single.len());
            for r in single.iter() {
                assert_eq!(many[i].route(r.dest), Some(r));
            }
        }
    }

    #[test]
    fn ases_crossed_excludes_vantage_includes_dest() {
        let t = topo();
        let dests: Vec<AsId> =
            t.nodes().iter().filter(|n| n.tier == Tier::Content).map(|n| n.id).take(15).collect();
        let vantage = t.nodes().iter().find(|n| n.tier == Tier::Access).unwrap().id;
        let table = BgpTable::build(&t, vantage, Family::V4, &dests);
        let crossed = table.ases_crossed();
        assert!(!crossed.contains(&vantage));
        for r in table.iter() {
            assert!(crossed.contains(&r.dest));
        }
    }

    #[test]
    fn missing_dest_returns_none() {
        let t = topo();
        let vantage = t.nodes().iter().find(|n| n.tier == Tier::Access).unwrap().id;
        let table = BgpTable::build(&t, vantage, Family::V4, &[]);
        assert!(table.is_empty());
        assert_eq!(table.as_path(AsId(1)), None);
        assert_eq!(table.route(AsId(1)), None);
    }
}
