//! Property tests: Gao–Rexford invariants over randomly generated
//! topologies. These are the guarantees the whole study rests on — if
//! policy routing ever produced a valley, a loop, or an unreachable
//! destination in IPv4, every downstream table would be wrong.

use ipv6web_bgp::compute::{is_valley_free, routes_to_dest, RouteKind};
use ipv6web_bgp::BgpTable;
use ipv6web_topology::{generate, AsId, Family, Relationship, Tier, TopologyConfig};
use proptest::prelude::*;

fn arb_world() -> impl Strategy<Value = (ipv6web_topology::Topology, u64)> {
    (0u64..50, 60usize..200).prop_map(|(seed, n)| {
        let cfg = TopologyConfig::scaled(n.max(60));
        (generate(&cfg, seed), seed)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn v4_routes_complete_valley_free_loop_free((topo, _) in arb_world(), dest_pick in 0usize..1000) {
        let contents: Vec<AsId> = topo
            .nodes()
            .iter()
            .filter(|n| n.tier == Tier::Content)
            .map(|n| n.id)
            .collect();
        prop_assume!(!contents.is_empty());
        let dest = contents[dest_pick % contents.len()];
        let routes = routes_to_dest(&topo, dest, Family::V4);
        for n in topo.nodes() {
            let path = routes.as_path(n.id).expect("v4 world is connected");
            // loop-free: AsPath::new rejects consecutive repeats; check all
            let mut seen = std::collections::BTreeSet::new();
            for a in path.ases() {
                prop_assert!(seen.insert(*a), "loop through {a} in {path}");
            }
            prop_assert!(is_valley_free(&topo, &path, Family::V4), "{path}");
            prop_assert_eq!(path.source(), n.id);
            prop_assert_eq!(path.dest(), dest);
        }
    }

    #[test]
    fn v6_paths_use_only_v6_edges((topo, _) in arb_world(), dest_pick in 0usize..1000) {
        let duals: Vec<AsId> = topo
            .nodes()
            .iter()
            .filter(|n| n.tier == Tier::Content && n.is_dual_stack())
            .map(|n| n.id)
            .collect();
        prop_assume!(!duals.is_empty());
        let dest = duals[dest_pick % duals.len()];
        let routes = routes_to_dest(&topo, dest, Family::V6);
        for n in topo.nodes() {
            if let Some(edges) = routes.edge_path(n.id) {
                for eid in edges {
                    prop_assert!(topo.edge(eid).v6, "v6 route crossed a v4-only edge");
                }
            }
        }
    }

    #[test]
    fn local_pref_ordering_respected((topo, _) in arb_world(), dest_pick in 0usize..1000) {
        // If an AS has ANY customer offering a route to dest, its chosen
        // route must be customer-learned (never peer/provider).
        let contents: Vec<AsId> = topo
            .nodes()
            .iter()
            .filter(|n| n.tier == Tier::Content)
            .map(|n| n.id)
            .collect();
        prop_assume!(!contents.is_empty());
        let dest = contents[dest_pick % contents.len()];
        let routes = routes_to_dest(&topo, dest, Family::V4);
        for n in topo.nodes() {
            // Gao–Rexford export: a customer re-exports upward only its
            // OWN prefixes and its customer-learned routes — never routes
            // it learned from peers or its other providers. So a customer
            // "offers" us the destination iff it is the destination or
            // holds a customer route itself.
            let has_customer_offer = topo.neighbors(n.id, Family::V4).iter().any(|&(nbr, rel, _)| {
                rel == Relationship::ProviderOf
                    && (nbr == dest || routes.kind(nbr) == Some(RouteKind::Customer))
            });
            if has_customer_offer && n.id != dest {
                prop_assert_eq!(
                    routes.kind(n.id),
                    Some(RouteKind::Customer),
                    "{} must prefer its customer-learned route",
                    n.id
                );
            }
        }
    }

    #[test]
    fn v6_tables_subset_of_v4_reach((topo, _) in arb_world()) {
        let vantage = topo
            .nodes()
            .iter()
            .find(|n| n.tier == Tier::Access && n.is_dual_stack())
            .map(|n| n.id);
        prop_assume!(vantage.is_some());
        let vantage = vantage.unwrap();
        let dests: Vec<AsId> = topo
            .nodes()
            .iter()
            .filter(|n| n.tier == Tier::Content)
            .map(|n| n.id)
            .take(30)
            .collect();
        let t4 = BgpTable::build(&topo, vantage, Family::V4, &dests);
        let t6 = BgpTable::build(&topo, vantage, Family::V6, &dests);
        prop_assert!(t6.len() <= t4.len());
        for r in t6.iter() {
            prop_assert!(t4.route(r.dest).is_some(), "v6-reachable implies v4-reachable");
        }
    }

    #[test]
    fn paths_deterministic_across_recomputation((topo, _) in arb_world(), dest_pick in 0usize..1000) {
        let dest = AsId((dest_pick % topo.num_ases()) as u32);
        let a = routes_to_dest(&topo, dest, Family::V4);
        let b = routes_to_dest(&topo, dest, Family::V4);
        for n in topo.nodes() {
            prop_assert_eq!(a.as_path(n.id), b.as_path(n.id));
        }
    }
}
