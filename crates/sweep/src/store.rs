//! The crash-safe sweep result store.
//!
//! One directory holds the sweep's durable state:
//!
//! * `study-{key}.json` — one [`StudyRecord`] per finished (done or
//!   quarantined) case, written atomically by whichever process finished
//!   it. This is the append-only progress log crash-resume replays: a
//!   restarted orchestrator re-runs exactly the cases with no record.
//! * `results.json` — the merged columnar document (one array per metric
//!   column, rows sorted by case index), rebuilt from the records at the
//!   end of every orchestrator run. Order-independent on merge: any
//!   subset of processes finishing in any order produces the same bytes.
//! * `summary.txt` — the aggregate tables ([`crate::aggregate`]).
//! * `{key}.hb` / `{key}.crashed` — worker heartbeats and chaos markers;
//!   operational scratch, never scanned as records.
//!
//! [`ResultStore::scan`] follows the job store's recovery discipline:
//! torn `*.tmp` files are deleted, unparseable or misnamed records are
//! quarantined as `*.corrupt` (surfaced on the `store.quarantined`
//! counter) and their cases re-run.

use crate::aggregate::render_summary;
use crate::record::{StudyRecord, StudyStatus, SWEEP_SCHEMA};
use serde::Serialize;
use serde_json::Value;
use std::io;
use std::path::{Path, PathBuf};

/// Handle on the sweep store directory.
#[derive(Debug, Clone)]
pub struct ResultStore {
    dir: PathBuf,
}

/// What a [`ResultStore::scan`] found.
#[derive(Debug, Default)]
pub struct ScanOutcome {
    /// Parseable records, sorted by case index.
    pub records: Vec<StudyRecord>,
    /// Corrupt/misnamed record files, renamed to `*.corrupt` and skipped.
    pub quarantined: Vec<PathBuf>,
    /// Torn `*.tmp` files deleted.
    pub removed_tmp: usize,
}

impl ResultStore {
    /// Opens (creating if needed) the store rooted at `dir`.
    pub fn open(dir: &Path) -> io::Result<ResultStore> {
        std::fs::create_dir_all(dir)?;
        Ok(ResultStore { dir: dir.to_path_buf() })
    }

    /// The store directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Path of one case's record document.
    pub fn record_path(&self, key: &str) -> PathBuf {
        self.dir.join(format!("study-{key}.json"))
    }

    /// Path of one case's worker heartbeat file.
    pub fn heartbeat_path(&self, key: &str) -> PathBuf {
        self.dir.join(format!("{key}.hb"))
    }

    /// Path of one case's crash-once chaos marker.
    pub fn crash_marker_path(&self, key: &str) -> PathBuf {
        self.dir.join(format!("{key}.crashed"))
    }

    /// Path of the merged columnar results document.
    pub fn results_path(&self) -> PathBuf {
        self.dir.join("results.json")
    }

    /// Path of the rendered aggregate summary.
    pub fn summary_path(&self) -> PathBuf {
        self.dir.join("summary.txt")
    }

    /// Atomically writes `bytes` to `path` via a `.tmp` sibling + rename.
    /// The temp name carries the writer's pid: several processes (a
    /// re-spawned worker racing an orphan from before an orchestrator
    /// kill) may finish the same case, and their writes must not tear
    /// each other. Both write identical bytes, so whoever renames last
    /// changes nothing.
    fn write_atomic(path: &Path, bytes: &[u8]) -> io::Result<()> {
        let mut tmp = path.as_os_str().to_owned();
        tmp.push(format!(".{}.tmp", std::process::id()));
        let tmp = PathBuf::from(tmp);
        std::fs::write(&tmp, bytes)?;
        std::fs::rename(&tmp, path)
    }

    /// Persists a record (atomic; overwrites any previous version).
    pub fn save(&self, record: &StudyRecord) -> io::Result<()> {
        let json = serde_json::to_string_pretty(record)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
        Self::write_atomic(&self.record_path(&record.key), json.as_bytes())
    }

    /// Bumps a heartbeat file to `count` (atomic, pid-suffixed temp: an
    /// orphaned predecessor writing the same file cannot tear it).
    pub fn beat(&self, key: &str, count: u64) -> io::Result<()> {
        Self::write_atomic(&self.heartbeat_path(key), count.to_string().as_bytes())
    }

    /// Reads a heartbeat counter; `None` when absent or torn.
    pub fn read_beat(&self, key: &str) -> Option<u64> {
        std::fs::read_to_string(self.heartbeat_path(key)).ok()?.trim().parse().ok()
    }

    /// Recovery sweep over the store directory: deletes torn temp files,
    /// quarantines corrupt or misnamed records (bumping the
    /// `store.quarantined` counter), returns survivors sorted by index.
    pub fn scan(&self) -> io::Result<ScanOutcome> {
        let mut out = ScanOutcome::default();
        let mut entries: Vec<PathBuf> =
            std::fs::read_dir(&self.dir)?.filter_map(|e| e.ok().map(|e| e.path())).collect();
        entries.sort(); // deterministic quarantine order for logs/tests
        for path in entries {
            let Some(name) = path.file_name().and_then(|n| n.to_str()).map(String::from) else {
                continue;
            };
            if name.ends_with(".tmp") {
                std::fs::remove_file(&path)?;
                out.removed_tmp += 1;
                continue;
            }
            if !name.starts_with("study-") || !name.ends_with(".json") {
                continue;
            }
            let parsed = std::fs::read_to_string(&path)
                .ok()
                .and_then(|text| serde_json::from_str::<StudyRecord>(&text).ok())
                .filter(|rec| format!("study-{}.json", rec.key) == name);
            match parsed {
                Some(rec) => out.records.push(rec),
                None => {
                    let mut corrupt = path.as_os_str().to_owned();
                    corrupt.push(".corrupt");
                    let corrupt = PathBuf::from(corrupt);
                    std::fs::rename(&path, &corrupt)?;
                    ipv6web_obs::inc("store.quarantined");
                    out.quarantined.push(corrupt);
                }
            }
        }
        out.records.sort_by_key(|r| r.index);
        Ok(out)
    }

    /// Rebuilds and atomically writes `results.json` + `summary.txt` from
    /// `records`. Sorts by index first, so the output is independent of
    /// completion order — the merge step of crash-resume.
    pub fn write_merged(&self, records: &[StudyRecord]) -> io::Result<()> {
        let mut sorted: Vec<&StudyRecord> = records.iter().collect();
        sorted.sort_by_key(|r| r.index);
        let results = merged_results_json(&sorted);
        Self::write_atomic(&self.results_path(), results.as_bytes())?;
        let summary = render_summary(&sorted);
        Self::write_atomic(&self.summary_path(), summary.as_bytes())
    }
}

/// The merged columnar document: parallel arrays, one per column, rows in
/// case-index order. Quarantined rows carry `null` metric cells.
fn merged_results_json(sorted: &[&StudyRecord]) -> String {
    fn col(sorted: &[&StudyRecord], f: impl Fn(&StudyRecord) -> Value) -> Value {
        Value::Arr(sorted.iter().map(|r| f(r)).collect())
    }
    let metric = |sorted: &[&StudyRecord], f: &dyn Fn(&crate::record::StudyMetrics) -> Value| {
        Value::Arr(
            sorted.iter().map(|r| r.metrics.as_ref().map(f).unwrap_or(Value::Null)).collect(),
        )
    };
    let quarantined = sorted.iter().filter(|r| r.status == StudyStatus::Quarantined).count() as u64;
    let columns = Value::Obj(vec![
        ("index".to_string(), col(sorted, |r| Value::U64(r.index))),
        ("key".to_string(), col(sorted, |r| Value::Str(r.key.clone()))),
        ("config_hash".to_string(), col(sorted, |r| Value::Str(r.config_hash.clone()))),
        ("seed".to_string(), col(sorted, |r| Value::U64(r.seed))),
        ("peering_parity".to_string(), col(sorted, |r| Value::F64(r.peering_parity))),
        ("timeline".to_string(), col(sorted, |r| Value::Str(r.timeline.clone()))),
        ("faults".to_string(), col(sorted, |r| Value::Str(r.faults.clone()))),
        ("xlat".to_string(), col(sorted, |r| Value::Str(r.xlat.clone()))),
        ("status".to_string(), col(sorted, |r| r.status.to_value())),
        (
            "reason".to_string(),
            col(sorted, |r| {
                r.reason.as_ref().map(|s| Value::Str(s.clone())).unwrap_or(Value::Null)
            }),
        ),
        ("h1_holds".to_string(), metric(sorted, &|m| Value::Bool(m.h1_holds))),
        ("h2_holds".to_string(), metric(sorted, &|m| Value::Bool(m.h2_holds))),
        ("h1_min_share".to_string(), metric(sorted, &|m| Value::F64(m.h1_min_share))),
        ("h2_min_share".to_string(), metric(sorted, &|m| Value::F64(m.h2_min_share))),
        ("h2_loss_rate".to_string(), metric(sorted, &|m| Value::F64(m.h2_loss_rate))),
        ("sites_kept".to_string(), metric(sorted, &|m| Value::U64(m.sites_kept))),
        ("dest_ases_v6".to_string(), metric(sorted, &|m| Value::U64(m.dest_ases_v6))),
    ]);
    let doc = Value::Obj(vec![
        ("schema".to_string(), Value::Str(SWEEP_SCHEMA.to_string())),
        ("studies".to_string(), Value::U64(sorted.len() as u64)),
        ("quarantined".to_string(), Value::U64(quarantined)),
        ("columns".to_string(), columns),
    ]);
    let mut json = serde_json::to_string_pretty(&doc).expect("results serialize");
    json.push('\n');
    json
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::StudyRecord;
    use crate::spec::SweepSpec;

    fn tmpdir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("ipv6web-sweep-store-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn records() -> Vec<StudyRecord> {
        let cases = SweepSpec {
            scale: Some("quick".to_string()),
            seeds: Some(vec![1, 2, 3]),
            ..SweepSpec::default()
        }
        .expand()
        .unwrap();
        vec![
            StudyRecord::quarantined(&cases[0], "timed out after 10s"),
            StudyRecord::quarantined(&cases[1], "worker exited with code 1"),
            StudyRecord::quarantined(&cases[2], "timed out after 10s"),
        ]
    }

    #[test]
    fn save_scan_roundtrip_sorted_by_index() {
        let dir = tmpdir("roundtrip");
        let store = ResultStore::open(&dir).unwrap();
        let recs = records();
        // write out of order; scan returns index order
        store.save(&recs[2]).unwrap();
        store.save(&recs[0]).unwrap();
        store.save(&recs[1]).unwrap();
        let scan = store.scan().unwrap();
        assert_eq!(scan.records, recs);
        assert!(scan.quarantined.is_empty());
        assert_eq!(scan.removed_tmp, 0);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn scan_quarantines_corrupt_and_misnamed_counting_them() {
        let dir = tmpdir("recovery");
        let store = ResultStore::open(&dir).unwrap();
        let recs = records();
        store.save(&recs[0]).unwrap();
        // torn temp from a crash mid-write
        std::fs::write(dir.join("study-zzz.json.12345.tmp"), b"{\"key\": \"zz").unwrap();
        // truncated record
        std::fs::write(dir.join("study-00009-beef.json"), b"{\"key\": \"00009-beef\"").unwrap();
        // valid record under the wrong filename: not trusted
        let stray = serde_json::to_string_pretty(&recs[1]).unwrap();
        std::fs::write(dir.join("study-99999-cafe.json"), stray).unwrap();

        ipv6web_obs::reset();
        ipv6web_obs::enable();
        let scan = store.scan().unwrap();
        ipv6web_obs::flush_thread();
        assert_eq!(scan.records, vec![recs[0].clone()]);
        assert_eq!(scan.removed_tmp, 1);
        assert_eq!(scan.quarantined.len(), 2);
        assert!(dir.join("study-00009-beef.json.corrupt").exists());
        let snap = ipv6web_obs::snapshot();
        assert_eq!(snap.counters.get("store.quarantined"), Some(&2));
        ipv6web_obs::reset();

        // a second scan is a no-op: corrupt files stay quarantined
        let again = store.scan().unwrap();
        assert_eq!(again.records.len(), 1);
        assert!(again.quarantined.is_empty());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn scan_ignores_heartbeats_markers_and_merged_outputs() {
        let dir = tmpdir("foreign");
        let store = ResultStore::open(&dir).unwrap();
        let recs = records();
        store.save(&recs[0]).unwrap();
        store.beat(&recs[1].key, 7).unwrap();
        assert_eq!(store.read_beat(&recs[1].key), Some(7));
        std::fs::write(store.crash_marker_path(&recs[2].key), b"x").unwrap();
        store.write_merged(&recs).unwrap();
        let scan = store.scan().unwrap();
        assert_eq!(scan.records.len(), 1);
        assert!(scan.quarantined.is_empty(), "{:?}", scan.quarantined);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn merged_output_is_order_independent() {
        let dir_a = tmpdir("merge-a");
        let dir_b = tmpdir("merge-b");
        let store_a = ResultStore::open(&dir_a).unwrap();
        let store_b = ResultStore::open(&dir_b).unwrap();
        let recs = records();
        let mut reversed = recs.clone();
        reversed.reverse();
        store_a.write_merged(&recs).unwrap();
        store_b.write_merged(&reversed).unwrap();
        let a = std::fs::read(store_a.results_path()).unwrap();
        let b = std::fs::read(store_b.results_path()).unwrap();
        assert_eq!(a, b, "merge order must not leak into results.json");
        let sa = std::fs::read(store_a.summary_path()).unwrap();
        let sb = std::fs::read(store_b.summary_path()).unwrap();
        assert_eq!(sa, sb, "merge order must not leak into summary.txt");
        let text = String::from_utf8(a).unwrap();
        assert!(text.contains("\"schema\""), "{text}");
        assert!(text.contains(SWEEP_SCHEMA));
        std::fs::remove_dir_all(&dir_a).unwrap();
        std::fs::remove_dir_all(&dir_b).unwrap();
    }
}
