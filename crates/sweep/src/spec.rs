//! The serde-able sweep specification and its deterministic expansion.
//!
//! A [`SweepSpec`] names a base scenario (a scale tier or a full inline
//! [`Scenario`]) and up to five axes — seeds, peering-parity levels,
//! adoption-timeline variants, fault plans, translation-plane configs.
//! [`SweepSpec::expand`] takes their cross product in a fixed order
//! (parity × timeline × faults × xlat × seeds, seeds innermost), so the
//! study matrix — indices, scenarios, and
//! with them every [`StudyCase::key`] — is a pure function of the spec.
//! The orchestrator and every worker process expand the same spec
//! independently and agree on the matrix without any coordination.

use ipv6web_alexa::AdoptionTimeline;
use ipv6web_core::{ExecutionMode, Scenario};
use ipv6web_faults::FaultPlan;
use ipv6web_xlat::XlatConfig;
use serde::{Deserialize, Serialize};
use std::time::Duration;

/// A named variant of the base scenario's adoption timeline: only the
/// fields present override the base. `total_weeks` changes ripple through
/// [`Scenario::with_timeline`]'s campaign resync.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TimelineTweak {
    /// Axis label, carried into study records and aggregate tables.
    pub name: String,
    /// Override: campaign length in weeks.
    pub total_weeks: Option<u32>,
    /// Override: week of the IANA depletion jump.
    pub iana_week: Option<u32>,
    /// Override: week of the World IPv6 Day jump.
    pub ipv6_day_week: Option<u32>,
    /// Override: fraction of eventually-dual sites published at week 0.
    pub base_fraction: Option<f64>,
    /// Override: fraction publishing in the IANA jump.
    pub iana_jump: Option<f64>,
    /// Override: fraction publishing in the World IPv6 Day jump.
    pub ipv6_day_jump: Option<f64>,
}

impl TimelineTweak {
    /// The no-override variant: the base scenario's own timeline.
    pub fn baseline() -> TimelineTweak {
        TimelineTweak {
            name: "base".to_string(),
            total_weeks: None,
            iana_week: None,
            ipv6_day_week: None,
            base_fraction: None,
            iana_jump: None,
            ipv6_day_jump: None,
        }
    }

    /// The base timeline with this tweak's overrides applied.
    pub fn apply(&self, base: &AdoptionTimeline) -> AdoptionTimeline {
        let mut t = base.clone();
        if let Some(v) = self.total_weeks {
            t.total_weeks = v;
        }
        if let Some(v) = self.iana_week {
            t.iana_week = v;
        }
        if let Some(v) = self.ipv6_day_week {
            t.ipv6_day_week = v;
        }
        if let Some(v) = self.base_fraction {
            t.base_fraction = v;
        }
        if let Some(v) = self.iana_jump {
            t.iana_jump = v;
        }
        if let Some(v) = self.ipv6_day_jump {
            t.ipv6_day_jump = v;
        }
        t
    }
}

/// One value of the fault-plan axis: a named builtin (`base` keeps the
/// base scenario's plan, `none` clears it, `demo` is
/// [`FaultPlan::demo`] over the variant's campaign length) or a full
/// inline plan.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FaultAxis {
    /// Axis label, carried into study records and aggregate tables.
    pub name: String,
    /// Inline plan; when present it wins over the builtin names.
    pub plan: Option<FaultPlan>,
}

impl FaultAxis {
    /// Resolves to a concrete plan for a campaign of `total_weeks`.
    pub fn resolve(&self, base: &FaultPlan, total_weeks: u32) -> Result<FaultPlan, String> {
        if let Some(plan) = &self.plan {
            return Ok(plan.clone());
        }
        match self.name.as_str() {
            "base" => Ok(base.clone()),
            "none" => Ok(FaultPlan::default()),
            "demo" => Ok(FaultPlan::demo(total_weeks)),
            other => Err(format!(
                "fault axis `{other}` has no inline plan and is not a builtin \
                 (expected base, none, or demo)"
            )),
        }
    }
}

/// One value of the translation-plane axis: a named builtin (`base`
/// keeps the base scenario's config, `none` turns the plane off,
/// `nat64` is the [`Scenario::nat64`] preset) or a full inline
/// [`XlatConfig`]. `gateways` overrides the resolved gateway count, so a
/// spec can sweep translator capacity without spelling out whole
/// configs.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct XlatAxis {
    /// Axis label, carried into study records and aggregate tables.
    pub name: String,
    /// Inline config; when present it wins over the builtin names.
    pub config: Option<XlatConfig>,
    /// Override applied after resolution: NAT64 gateway count.
    pub gateways: Option<usize>,
}

impl XlatAxis {
    /// Resolves to a concrete translation-plane config.
    pub fn resolve(&self, base: &XlatConfig) -> Result<XlatConfig, String> {
        let mut cfg = if let Some(cfg) = &self.config {
            cfg.clone()
        } else {
            match self.name.as_str() {
                "base" => base.clone(),
                "none" => XlatConfig::default(),
                // the preset's xlat block is seed-independent, so any
                // seed picks out the same config
                "nat64" => Scenario::nat64(0).xlat,
                other => {
                    return Err(format!(
                        "xlat axis `{other}` has no inline config and is not a builtin \
                         (expected base, none, or nat64)"
                    ))
                }
            }
        };
        if let Some(n) = self.gateways {
            cfg.gateways = n;
        }
        Ok(cfg)
    }
}

/// Supervision knobs, all optional in the spec file. Missing fields take
/// the defaults documented on [`Supervision`].
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct SupervisionSpec {
    /// Per-study wall-clock timeout, seconds (default 600).
    pub timeout_secs: Option<u64>,
    /// Worker heartbeat write interval, milliseconds (default 250).
    pub heartbeat_interval_ms: Option<u64>,
    /// Heartbeat silence treated as a stall, seconds (default 30).
    pub heartbeat_stall_secs: Option<u64>,
    /// Attempts before a study is quarantined as poison (default 3).
    pub max_attempts: Option<u32>,
    /// First retry backoff, milliseconds (default 500; doubles per retry).
    pub backoff_base_ms: Option<u64>,
    /// Backoff cap, milliseconds (default 8000).
    pub backoff_cap_ms: Option<u64>,
}

/// Resolved supervision policy — what the orchestrator actually enforces.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Supervision {
    /// SIGKILL a worker once its study has run this long.
    pub timeout: Duration,
    /// How often workers bump their heartbeat file.
    pub heartbeat_interval: Duration,
    /// SIGKILL a worker whose heartbeat has not moved for this long.
    pub heartbeat_stall: Duration,
    /// Failures (of any kind) before the study becomes a poison record.
    pub max_attempts: u32,
    /// Exponential backoff base between retries of one study.
    pub backoff_base: Duration,
    /// Backoff ceiling.
    pub backoff_cap: Duration,
}

impl SupervisionSpec {
    /// Fills in defaults. `max_attempts` is clamped to ≥ 1: zero attempts
    /// would quarantine every study without running anything.
    pub fn resolve(&self) -> Supervision {
        Supervision {
            timeout: Duration::from_secs(self.timeout_secs.unwrap_or(600).max(1)),
            heartbeat_interval: Duration::from_millis(self.heartbeat_interval_ms.unwrap_or(250)),
            heartbeat_stall: Duration::from_secs(self.heartbeat_stall_secs.unwrap_or(30).max(1)),
            max_attempts: self.max_attempts.unwrap_or(3).max(1),
            backoff_base: Duration::from_millis(self.backoff_base_ms.unwrap_or(500)),
            backoff_cap: Duration::from_millis(self.backoff_cap_ms.unwrap_or(8_000)),
        }
    }
}

/// Deterministic chaos injection, by case index. These hooks exist so CI
/// and the acceptance tests can script worker failures that behave
/// *identically* in a clean reference run and a kill-riddled run — the
/// byte-identity contract covers them.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct ChaosSpec {
    /// Cases whose worker runs forever while still heartbeating: killed by
    /// the wall-clock timeout, quarantined after `max_attempts`.
    pub hang: Option<Vec<usize>>,
    /// Cases whose worker runs forever *without* heartbeating: killed by
    /// stall detection.
    pub hang_silent: Option<Vec<usize>>,
    /// Cases whose worker aborts mid-study on its first attempt (leaving a
    /// marker file), then runs normally on retry — a scripted
    /// worker-death-and-recovery.
    pub crash_once: Option<Vec<usize>>,
}

impl ChaosSpec {
    fn has(list: &Option<Vec<usize>>, index: usize) -> bool {
        list.as_deref().is_some_and(|l| l.contains(&index))
    }

    /// Whether `index` is marked as a heartbeating hang.
    pub fn hangs(&self, index: usize) -> bool {
        Self::has(&self.hang, index)
    }

    /// Whether `index` is marked as a silent hang.
    pub fn hangs_silent(&self, index: usize) -> bool {
        Self::has(&self.hang_silent, index)
    }

    /// Whether `index` is marked to crash on its first attempt.
    pub fn crashes_once(&self, index: usize) -> bool {
        Self::has(&self.crash_once, index)
    }
}

/// A complete sweep specification: base scenario + axes + supervision.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct SweepSpec {
    /// Named base scale: `quick`, `paper`, `faults`, `internet`,
    /// `internet-smoke`, `nat64`, `panel`. Mutually exclusive with
    /// `scenario`.
    pub scale: Option<String>,
    /// Base seed for a named scale (default 42); the seed axis overrides
    /// it per study.
    pub seed: Option<u64>,
    /// Full inline base scenario; overrides `scale`/`seed`.
    pub scenario: Option<Scenario>,
    /// Seed axis; empty/absent means just the base seed.
    pub seeds: Option<Vec<u64>>,
    /// Peering-parity axis (the paper's headline knob); absent means the
    /// base scenario's value.
    pub peering_parity: Option<Vec<f64>>,
    /// Adoption-timeline axis; absent means the base timeline.
    pub timelines: Option<Vec<TimelineTweak>>,
    /// Fault-plan axis; absent means the base scenario's plan.
    pub faults: Option<Vec<FaultAxis>>,
    /// Translation-plane axis (NAT64 gateway count / client-stack mix);
    /// absent means the base scenario's config.
    pub xlat: Option<Vec<XlatAxis>>,
    /// Run every study through the reference sequential pipeline (reports
    /// are byte-identical either way; this only trades speed).
    pub sequential: Option<bool>,
    /// Supervision knobs (timeouts, retries, heartbeats).
    pub supervision: Option<SupervisionSpec>,
    /// Scripted chaos, for CI and the acceptance tests.
    pub chaos: Option<ChaosSpec>,
}

/// One cell of the expanded study matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct StudyCase {
    /// Position in expansion order — the stable identity prefix.
    pub index: usize,
    /// The seed-axis value.
    pub seed: u64,
    /// The parity-axis value.
    pub peering_parity: f64,
    /// The timeline-axis label.
    pub timeline: String,
    /// The fault-axis label.
    pub faults: String,
    /// The xlat-axis label.
    pub xlat: String,
    /// The fully resolved, validated scenario.
    pub scenario: Scenario,
    /// Execution mode for the study.
    pub sequential: bool,
}

impl StudyCase {
    /// Stable case key: `{index:05}-{config_hash:016x}`. The index makes
    /// keys unique even when two axis values collapse to the same
    /// configuration; the hash ties the record to the exact scenario, so
    /// a record written under a stale spec can never be mistaken for a
    /// current result.
    pub fn key(&self) -> String {
        format!("{:05}-{:016x}", self.index, self.scenario.config_hash())
    }

    /// Execution mode implied by the case.
    pub fn mode(&self) -> ExecutionMode {
        if self.sequential {
            ExecutionMode::Sequential
        } else {
            ExecutionMode::VantageParallel
        }
    }
}

impl SweepSpec {
    /// Resolves the base scenario (scale tier or inline), mirroring the
    /// daemon's `JobSpec::resolve` rules.
    pub fn base_scenario(&self) -> Result<Scenario, String> {
        let mut base = match (&self.scenario, &self.scale) {
            (Some(_), Some(_)) => {
                return Err("give either `scale` or an inline `scenario`, not both".into())
            }
            (Some(sc), None) => {
                if self.seed.is_some() {
                    return Err("`seed` only applies to a named `scale`; \
                                an inline scenario carries its own seed"
                        .into());
                }
                sc.clone()
            }
            (None, scale) => {
                let seed = self.seed.unwrap_or(42);
                match scale.as_deref().unwrap_or("quick") {
                    "quick" => Scenario::quick(seed),
                    "paper" => Scenario::paper(seed),
                    "faults" => Scenario::faults(seed),
                    "internet" => Scenario::internet(seed),
                    "internet-smoke" => Scenario::internet_smoke(seed),
                    "nat64" => Scenario::nat64(seed),
                    "panel" => Scenario::panel(seed),
                    other => {
                        return Err(format!(
                            "unknown scale `{other}` (expected quick, paper, faults, \
                             internet, internet-smoke, nat64, or panel)"
                        ))
                    }
                }
            }
        };
        // the sweep store owns checkpoint placement, same as the job store
        base.checkpoint_dir = None;
        Ok(base)
    }

    /// Resolved supervision policy (defaults when the block is absent).
    pub fn supervision(&self) -> Supervision {
        self.supervision.clone().unwrap_or_default().resolve()
    }

    /// Resolved chaos hooks (all empty when the block is absent).
    pub fn chaos(&self) -> ChaosSpec {
        self.chaos.clone().unwrap_or_default()
    }

    /// Expands the spec into the deterministic study matrix.
    ///
    /// Axis order is parity × timeline × faults × xlat × seeds with
    /// seeds innermost; indices number the cells in that order. Every
    /// expanded scenario is validated — one bad cell fails the whole
    /// expansion, before any process is spawned.
    pub fn expand(&self) -> Result<Vec<StudyCase>, String> {
        let base = self.base_scenario()?;
        let seeds = match &self.seeds {
            Some(s) if !s.is_empty() => s.clone(),
            Some(_) => return Err("`seeds` axis is explicitly empty".into()),
            None => vec![base.seed],
        };
        let parities = match &self.peering_parity {
            Some(p) if !p.is_empty() => p.clone(),
            Some(_) => return Err("`peering_parity` axis is explicitly empty".into()),
            None => vec![base.topology.dual.peering_parity],
        };
        let timelines = match &self.timelines {
            Some(t) if !t.is_empty() => t.clone(),
            Some(_) => return Err("`timelines` axis is explicitly empty".into()),
            None => vec![TimelineTweak::baseline()],
        };
        let faults = match &self.faults {
            Some(f) if !f.is_empty() => f.clone(),
            Some(_) => return Err("`faults` axis is explicitly empty".into()),
            None => vec![FaultAxis { name: "base".to_string(), plan: None }],
        };
        let xlats = match &self.xlat {
            Some(x) if !x.is_empty() => x.clone(),
            Some(_) => return Err("`xlat` axis is explicitly empty".into()),
            None => vec![XlatAxis { name: "base".to_string(), config: None, gateways: None }],
        };
        let sequential = self.sequential.unwrap_or(false);

        let mut cases = Vec::with_capacity(
            parities.len() * timelines.len() * faults.len() * xlats.len() * seeds.len(),
        );
        for parity in &parities {
            for tweak in &timelines {
                let timeline = tweak.apply(&base.timeline);
                let variant = base.clone().with_peering_parity(*parity).with_timeline(timeline);
                for fx in &faults {
                    let plan = fx.resolve(&base.faults, variant.timeline.total_weeks)?;
                    let mut with_faults = variant.clone();
                    with_faults.faults = plan;
                    for xa in &xlats {
                        let mut with_xlat = with_faults.clone();
                        with_xlat.xlat = xa.resolve(&base.xlat)?;
                        for seed in &seeds {
                            let scenario = with_xlat.clone().with_seed(*seed);
                            scenario.validate().map_err(|e| {
                                format!(
                                    "case (parity {parity}, timeline {}, faults {}, \
                                     xlat {}, seed {seed}) is invalid: {e}",
                                    tweak.name, fx.name, xa.name
                                )
                            })?;
                            cases.push(StudyCase {
                                index: cases.len(),
                                seed: *seed,
                                peering_parity: *parity,
                                timeline: tweak.name.clone(),
                                faults: fx.name.clone(),
                                xlat: xa.name.clone(),
                                scenario,
                                sequential,
                            });
                        }
                    }
                }
            }
        }
        Ok(cases)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_by_two() -> SweepSpec {
        SweepSpec {
            scale: Some("quick".to_string()),
            seeds: Some(vec![1, 2]),
            peering_parity: Some(vec![0.25, 0.75]),
            ..SweepSpec::default()
        }
    }

    #[test]
    fn expansion_is_deterministic_and_ordered() {
        let a = two_by_two().expand().unwrap();
        let b = two_by_two().expand().unwrap();
        assert_eq!(a.len(), 4);
        assert_eq!(a, b, "same spec, same matrix");
        // seeds innermost: indices 0,1 share the first parity
        assert_eq!(a[0].peering_parity, 0.25);
        assert_eq!(a[1].peering_parity, 0.25);
        assert_eq!(a[0].seed, 1);
        assert_eq!(a[1].seed, 2);
        assert_eq!(a[2].peering_parity, 0.75);
        for (i, case) in a.iter().enumerate() {
            assert_eq!(case.index, i);
            assert!(case.key().starts_with(&format!("{i:05}-")));
            assert_eq!(case.scenario.topology.dual.peering_parity, case.peering_parity);
            assert_eq!(case.scenario.seed, case.seed);
        }
        // distinct configurations hash apart
        assert_ne!(a[0].key()[6..], a[1].key()[6..]);
    }

    #[test]
    fn default_axes_collapse_to_base() {
        let spec = SweepSpec { scale: Some("quick".to_string()), ..SweepSpec::default() };
        let cases = spec.expand().unwrap();
        assert_eq!(cases.len(), 1);
        assert_eq!(cases[0].scenario, Scenario::quick(42));
        assert_eq!(cases[0].timeline, "base");
        assert_eq!(cases[0].faults, "base");
        assert_eq!(cases[0].xlat, "base");
        assert!(!cases[0].scenario.xlat.is_active(), "quick base has no translation plane");
    }

    #[test]
    fn xlat_axis_expands_and_overrides_gateways() {
        let spec = SweepSpec {
            scale: Some("quick".to_string()),
            xlat: Some(vec![
                XlatAxis { name: "none".to_string(), config: None, gateways: None },
                XlatAxis { name: "nat64".to_string(), config: None, gateways: None },
                XlatAxis { name: "nat64-wide".to_string(), config: None, gateways: Some(5) },
            ]),
            ..SweepSpec::default()
        };
        // the gateways override alone can't resolve a label that is not a
        // builtin — it still needs a config to override
        assert!(spec.expand().unwrap_err().contains("nat64-wide"));

        let mut wide = Scenario::nat64(0).xlat;
        wide.gateways = 1; // overridden below
        let spec = SweepSpec {
            xlat: Some(vec![
                XlatAxis { name: "none".to_string(), config: None, gateways: None },
                XlatAxis { name: "nat64".to_string(), config: None, gateways: None },
                XlatAxis { name: "nat64-wide".to_string(), config: Some(wide), gateways: Some(5) },
            ]),
            ..spec
        };
        let cases = spec.expand().unwrap();
        assert_eq!(cases.len(), 3);
        assert_eq!(
            cases.iter().map(|c| c.xlat.as_str()).collect::<Vec<_>>(),
            ["none", "nat64", "nat64-wide"]
        );
        assert!(!cases[0].scenario.xlat.is_active());
        assert_eq!(cases[1].scenario.xlat.gateways, Scenario::nat64(0).xlat.gateways);
        assert_eq!(cases[2].scenario.xlat.gateways, 5, "gateways override applies");
        // distinct translation planes must hash apart, or resumed sweeps
        // could mistake one cell's record for another's
        assert_ne!(cases[0].key()[6..], cases[1].key()[6..]);
        assert_ne!(cases[1].key()[6..], cases[2].key()[6..]);
    }

    #[test]
    fn nat64_scale_is_a_valid_sweep_base() {
        let spec = SweepSpec { scale: Some("nat64".to_string()), ..SweepSpec::default() };
        let cases = spec.expand().unwrap();
        assert_eq!(cases.len(), 1);
        assert!(cases[0].scenario.xlat.is_active());
        assert_eq!(cases[0].scenario, Scenario::nat64(42));
    }

    #[test]
    fn timeline_and_fault_axes_expand() {
        let mut shorter = TimelineTweak::baseline();
        shorter.name = "short".to_string();
        shorter.total_weeks = Some(16);
        shorter.iana_week = Some(5);
        shorter.ipv6_day_week = Some(12);
        let spec = SweepSpec {
            scale: Some("quick".to_string()),
            timelines: Some(vec![TimelineTweak::baseline(), shorter]),
            faults: Some(vec![
                FaultAxis { name: "none".to_string(), plan: None },
                FaultAxis { name: "demo".to_string(), plan: None },
            ]),
            ..SweepSpec::default()
        };
        let cases = spec.expand().unwrap();
        assert_eq!(cases.len(), 4);
        assert_eq!(cases[0].scenario.timeline.total_weeks, 26);
        assert!(cases[0].scenario.faults.is_empty(), "none axis clears the plan");
        assert!(!cases[1].scenario.faults.is_empty(), "demo axis injects faults");
        assert_eq!(cases[2].scenario.timeline.total_weeks, 16);
        assert_eq!(cases[2].scenario.campaign.total_weeks, 16, "campaign resynced");
        // the demo plan is sized to the variant's campaign, so it
        // validates under the shortened timeline too
        assert_eq!(cases[3].scenario.validate(), Ok(()));
    }

    #[test]
    fn invalid_specs_are_rejected_before_any_spawn() {
        let both = SweepSpec {
            scale: Some("quick".to_string()),
            scenario: Some(Scenario::quick(1)),
            ..SweepSpec::default()
        };
        assert!(both.expand().is_err());

        let empty_axis = SweepSpec { seeds: Some(vec![]), ..SweepSpec::default() };
        assert!(empty_axis.expand().unwrap_err().contains("explicitly empty"));

        let bad_scale = SweepSpec { scale: Some("galactic".to_string()), ..SweepSpec::default() };
        assert!(bad_scale.expand().unwrap_err().contains("galactic"));

        let mut bad_tweak = TimelineTweak::baseline();
        bad_tweak.name = "broken".to_string();
        bad_tweak.ipv6_day_week = Some(999);
        let bad_cell = SweepSpec { timelines: Some(vec![bad_tweak]), ..SweepSpec::default() };
        let err = bad_cell.expand().unwrap_err();
        assert!(err.contains("broken"), "{err}");

        let bad_fault = SweepSpec {
            faults: Some(vec![FaultAxis { name: "mystery".to_string(), plan: None }]),
            ..SweepSpec::default()
        };
        assert!(bad_fault.expand().unwrap_err().contains("mystery"));

        let bad_xlat = SweepSpec {
            xlat: Some(vec![XlatAxis { name: "teredo".to_string(), config: None, gateways: None }]),
            ..SweepSpec::default()
        };
        let err = bad_xlat.expand().unwrap_err();
        assert!(err.contains("teredo") && err.contains("nat64"), "{err}");
    }

    #[test]
    fn spec_roundtrips_through_json_with_missing_fields() {
        let spec = two_by_two();
        let json = serde_json::to_string_pretty(&spec).unwrap();
        let back: SweepSpec = serde_json::from_str(&json).unwrap();
        assert_eq!(back.expand().unwrap(), spec.expand().unwrap());
        // a minimal hand-written file: every optional block absent
        let minimal: SweepSpec = serde_json::from_str("{\"scale\": \"quick\"}").unwrap();
        assert_eq!(minimal.expand().unwrap().len(), 1);
        assert_eq!(minimal.supervision().max_attempts, 3);
        assert!(!minimal.chaos().hangs(0));
    }

    #[test]
    fn supervision_defaults_and_overrides() {
        let sup = SupervisionSpec::default().resolve();
        assert_eq!(sup.timeout, Duration::from_secs(600));
        assert_eq!(sup.max_attempts, 3);
        let tight = SupervisionSpec {
            timeout_secs: Some(5),
            max_attempts: Some(0), // clamped: zero attempts runs nothing
            backoff_base_ms: Some(10),
            ..SupervisionSpec::default()
        }
        .resolve();
        assert_eq!(tight.timeout, Duration::from_secs(5));
        assert_eq!(tight.max_attempts, 1);
        assert_eq!(tight.backoff_base, Duration::from_millis(10));
    }

    #[test]
    fn chaos_hooks_resolve_by_index() {
        let chaos = ChaosSpec {
            hang: Some(vec![3]),
            hang_silent: Some(vec![4]),
            crash_once: Some(vec![0, 5]),
        };
        assert!(chaos.hangs(3) && !chaos.hangs(4));
        assert!(chaos.hangs_silent(4));
        assert!(chaos.crashes_once(0) && chaos.crashes_once(5) && !chaos.crashes_once(1));
    }
}
