//! Standalone sweep binary; `repro sweep` multiplexes to the same CLI.

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    std::process::exit(ipv6web_sweep::cli::cli_main(&args, &[]));
}
