//! Aggregate tables over a sweep's study records.
//!
//! The headline query is the paper's headline knob: **H2 loss rate vs
//! peering parity** — how much of the IPv6 data-plane quality gap
//! survives as peer-peer parity rises — with Student-t confidence
//! intervals from `ipv6web-stats` over the per-study loss rates.
//! Everything here is a pure function of the (index-sorted) record list,
//! so the rendered text is order-independent on merge and byte-stable
//! across crash-resume.

use crate::record::{StudyRecord, StudyStatus};
use ipv6web_stats::{mean_ci, StudentT, Welford};

/// Groups done records by a key, preserving first-seen (index) order.
fn group_by<'a, K: PartialEq + Clone>(
    records: &[&'a StudyRecord],
    key: impl Fn(&StudyRecord) -> K,
) -> Vec<(K, Vec<&'a StudyRecord>)> {
    let mut groups: Vec<(K, Vec<&StudyRecord>)> = Vec::new();
    for r in records {
        let k = key(r);
        match groups.iter_mut().find(|(g, _)| *g == k) {
            Some((_, members)) => members.push(r),
            None => groups.push((k, vec![r])),
        }
    }
    groups
}

fn fmt_ci_pct(acc: &Welford) -> String {
    let ci = mean_ci(acc, StudentT::P95);
    let half = ci.half_width * 100.0;
    if half.is_finite() {
        format!("{:>7.3} ±{:>6.3}", ci.mean * 100.0, half)
    } else {
        format!("{:>7.3} ±   n/a", ci.mean * 100.0)
    }
}

/// Renders the "H2 loss rate vs peering parity" table: one row per
/// parity level, mean loss (percent) with a 95% CI over the level's
/// studies, plus verdict counts.
pub fn render_parity_table(sorted: &[&StudyRecord]) -> String {
    let done: Vec<&StudyRecord> =
        sorted.iter().copied().filter(|r| r.status == StudyStatus::Done).collect();
    let mut out = String::from("H2 loss rate vs peering parity (mean % ± 95% CI)\n");
    out.push_str(&format!(
        "{:<8} {:>4}  {:<16} {:>9} {:>9}\n",
        "parity", "n", "loss %", "h1 holds", "h2 holds"
    ));
    out.push_str(&"-".repeat(52));
    out.push('\n');
    for (parity, members) in group_by(&done, |r| r.peering_parity) {
        let losses: Welford =
            members.iter().filter_map(|r| r.metrics.as_ref()).map(|m| m.h2_loss_rate).collect();
        let h1 = members.iter().filter(|r| r.metrics.as_ref().is_some_and(|m| m.h1_holds)).count();
        let h2 = members.iter().filter(|r| r.metrics.as_ref().is_some_and(|m| m.h2_holds)).count();
        let n = members.len();
        out.push_str(&format!(
            "{parity:<8} {n:>4}  {:<16} {:>9} {:>9}\n",
            fmt_ci_pct(&losses),
            format!("{h1}/{n}"),
            format!("{h2}/{n}"),
        ));
    }
    out
}

/// Renders verdict stability per timeline and per fault plan.
pub fn render_stability_table(sorted: &[&StudyRecord]) -> String {
    let done: Vec<&StudyRecord> =
        sorted.iter().copied().filter(|r| r.status == StudyStatus::Done).collect();
    let mut out = String::from("Verdict stability by axis\n");
    out.push_str(&format!(
        "{:<10} {:<12} {:>4} {:>9} {:>9} {:>11}\n",
        "axis", "value", "n", "h1 holds", "h2 holds", "mean loss %"
    ));
    out.push_str(&"-".repeat(60));
    out.push('\n');
    let mut render_axis = |axis: &str, key: &dyn Fn(&StudyRecord) -> String| {
        for (value, members) in group_by(&done, key) {
            let h1 =
                members.iter().filter(|r| r.metrics.as_ref().is_some_and(|m| m.h1_holds)).count();
            let h2 =
                members.iter().filter(|r| r.metrics.as_ref().is_some_and(|m| m.h2_holds)).count();
            let losses: Welford =
                members.iter().filter_map(|r| r.metrics.as_ref()).map(|m| m.h2_loss_rate).collect();
            let n = members.len();
            out.push_str(&format!(
                "{axis:<10} {value:<12} {n:>4} {:>9} {:>9} {:>11.3}\n",
                format!("{h1}/{n}"),
                format!("{h2}/{n}"),
                losses.mean() * 100.0,
            ));
        }
    };
    render_axis("timeline", &|r| r.timeline.clone());
    render_axis("faults", &|r| r.faults.clone());
    render_axis("xlat", &|r| r.xlat.clone());
    out
}

/// Renders the full sweep summary: completion accounting, the parity
/// table, stability tables, and the quarantine list.
pub fn render_summary(sorted: &[&StudyRecord]) -> String {
    let done = sorted.iter().filter(|r| r.status == StudyStatus::Done).count();
    let quarantined: Vec<&&StudyRecord> =
        sorted.iter().filter(|r| r.status == StudyStatus::Quarantined).collect();
    let mut out = String::from("=== ipv6web-sweep summary ===\n\n");
    out.push_str(&format!(
        "studies: {} total, {done} done, {} quarantined\n\n",
        sorted.len(),
        quarantined.len()
    ));
    out.push_str(&render_parity_table(sorted));
    out.push('\n');
    out.push_str(&render_stability_table(sorted));
    if !quarantined.is_empty() {
        out.push('\n');
        out.push_str("Quarantined studies (poison records)\n");
        for r in &quarantined {
            out.push_str(&format!(
                "  {}  seed {}  parity {}  timeline {}  faults {}  xlat {}  — {}\n",
                r.key,
                r.seed,
                r.peering_parity,
                r.timeline,
                r.faults,
                r.xlat,
                r.reason.as_deref().unwrap_or("unknown"),
            ));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::{StudyMetrics, StudyRecord};
    use crate::spec::SweepSpec;

    fn synthetic(n_seeds: u64) -> Vec<StudyRecord> {
        let cases = SweepSpec {
            scale: Some("quick".to_string()),
            seeds: Some((1..=n_seeds).collect()),
            peering_parity: Some(vec![0.25, 0.75]),
            ..SweepSpec::default()
        }
        .expand()
        .unwrap();
        cases
            .iter()
            .map(|c| {
                if c.index == 3 {
                    return StudyRecord::quarantined(c, "timed out after 10s");
                }
                // Fabricating a full `Report` is overkill; start from a
                // quarantine record and flip it to a synthetic done state.
                let mut rec = StudyRecord::quarantined(c, "placeholder");
                rec.status = crate::record::StudyStatus::Done;
                rec.reason = None;
                rec.metrics = Some(StudyMetrics {
                    h1_holds: true,
                    h2_holds: c.peering_parity > 0.5,
                    h1_min_share: 0.9,
                    h2_min_share: 0.8,
                    h2_loss_rate: if c.peering_parity > 0.5 { 0.05 } else { 0.20 }
                        + c.seed as f64 * 0.001,
                    sites_kept: 100 + c.seed,
                    dest_ases_v6: 40,
                });
                rec
            })
            .collect()
    }

    #[test]
    fn summary_counts_and_groups() {
        let recs = synthetic(4);
        let sorted: Vec<&StudyRecord> = recs.iter().collect();
        let text = render_summary(&sorted);
        assert!(text.contains("studies: 8 total, 7 done, 1 quarantined"), "{text}");
        assert!(text.contains("H2 loss rate vs peering parity"));
        assert!(text.contains("0.25"));
        assert!(text.contains("0.75"));
        assert!(text.contains("Quarantined studies"));
        assert!(text.contains("timed out after 10s"));
    }

    #[test]
    fn parity_table_separates_levels() {
        let recs = synthetic(4);
        let sorted: Vec<&StudyRecord> = recs.iter().collect();
        let table = render_parity_table(&sorted);
        let low: Vec<&str> = table.lines().filter(|l| l.starts_with("0.25")).collect();
        let high: Vec<&str> = table.lines().filter(|l| l.starts_with("0.75")).collect();
        assert_eq!(low.len(), 1);
        assert_eq!(high.len(), 1);
        // low parity loses more, and the quarantined study is excluded
        assert!(low[0].contains(" 3 "), "one of four low-parity studies is poison: {}", low[0]);
        assert!(high[0].contains(" 4 "), "{}", high[0]);
        assert!(high[0].contains("4/4"), "h2 holds at high parity: {}", high[0]);
    }

    #[test]
    fn rendering_is_input_order_independent_after_sort() {
        let recs = synthetic(3);
        let sorted: Vec<&StudyRecord> = recs.iter().collect();
        let mut reversed: Vec<&StudyRecord> = recs.iter().rev().collect();
        reversed.sort_by_key(|r| r.index);
        assert_eq!(render_summary(&sorted), render_summary(&reversed));
    }
}
