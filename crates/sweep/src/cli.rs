//! Command-line front end, shared by the standalone `ipv6web-sweep`
//! binary and the `repro sweep` subcommand (which passes
//! `worker_prefix = ["sweep"]` so worker re-invocations route back
//! through the multiplexer).

use crate::orchestrator::{run_sweep, run_worker, SweepConfig};
use crate::spec::{ChaosSpec, FaultAxis, SupervisionSpec, SweepSpec, TimelineTweak};
use ipv6web_core::Scenario;
use serde_json::Value;
use std::path::PathBuf;

fn usage() -> i32 {
    eprintln!(
        "usage: ipv6web-sweep [run] <sweep.json> --store DIR [--procs N] [--metrics FILE]\n\
         \x20      ipv6web-sweep emit-spec [--out FILE]\n\
         \x20      ipv6web-sweep worker --spec FILE --index N --store DIR\n\
         \n\
         Expands the sweep spec into a deterministic study matrix, shards it\n\
         across N worker processes (default $IPV6WEB_PROCS or 1), and merges\n\
         per-study records into DIR/results.json + DIR/summary.txt. A killed\n\
         sweep re-run with the same spec and store resumes: only studies\n\
         without a record are re-run, and the merged output is byte-identical."
    );
    2
}

/// The spec `emit-spec` writes: a CI-sized 64-study sweep (8 seeds × 2
/// parity levels × 2 timelines × 2 fault plans) over a shrunk scenario,
/// with tight supervision and one scripted failure of each kind. Chaos
/// is part of the spec, so a clean reference run and a kill-riddled run
/// quarantine the same studies for the same reasons — byte-identically.
pub fn smoke_spec() -> SweepSpec {
    let mut scenario = Scenario::quick(42);
    let mut timeline = scenario.timeline.clone();
    timeline.total_weeks = 8;
    timeline.iana_week = 3;
    timeline.ipv6_day_week = 6;
    scenario.population.n_sites = 300;
    scenario.tail_sites = 50;
    scenario.campaign.ipv6_day_rounds = 2;
    scenario.analysis.min_paired_samples = 2;
    scenario.fig1_from_week = 2;
    let scenario = scenario.with_timeline(timeline);

    let mut short = TimelineTweak::baseline();
    short.name = "short".to_string();
    short.total_weeks = Some(7);
    short.ipv6_day_week = Some(5);

    SweepSpec {
        scenario: Some(scenario),
        seeds: Some((1..=8).collect()),
        peering_parity: Some(vec![0.3, 0.9]),
        timelines: Some(vec![TimelineTweak::baseline(), short]),
        faults: Some(vec![
            FaultAxis { name: "none".to_string(), plan: None },
            FaultAxis { name: "demo".to_string(), plan: None },
        ]),
        supervision: Some(SupervisionSpec {
            timeout_secs: Some(10),
            heartbeat_interval_ms: Some(100),
            heartbeat_stall_secs: Some(5),
            max_attempts: Some(2),
            backoff_base_ms: Some(50),
            backoff_cap_ms: Some(500),
        }),
        chaos: Some(ChaosSpec {
            hang: Some(vec![17]),
            hang_silent: Some(vec![29]),
            crash_once: Some(vec![5]),
        }),
        ..SweepSpec::default()
    }
}

fn load_spec(path: &str) -> Result<SweepSpec, String> {
    let text =
        std::fs::read_to_string(path).map_err(|e| format!("cannot read spec {path}: {e}"))?;
    serde_json::from_str(&text).map_err(|e| format!("cannot parse spec {path}: {e}"))
}

fn write_metrics(path: &str) -> Result<(), String> {
    ipv6web_obs::record_peak_rss();
    ipv6web_obs::flush_thread();
    let snap = ipv6web_obs::snapshot();
    let to_obj = |m: &std::collections::BTreeMap<String, u64>| {
        Value::Obj(m.iter().map(|(k, v)| (k.clone(), Value::U64(*v))).collect())
    };
    let doc = Value::Obj(vec![
        ("schema".to_string(), Value::Str("ipv6web-sweep-metrics/v1".to_string())),
        ("counters".to_string(), to_obj(&snap.counters)),
        ("gauges".to_string(), to_obj(&snap.gauges)),
    ]);
    let mut json = serde_json::to_string_pretty(&doc).expect("metrics serialize");
    json.push('\n');
    std::fs::write(path, json).map_err(|e| format!("cannot write metrics {path}: {e}"))
}

fn worker_main(args: &[String]) -> i32 {
    let mut spec_path = None;
    let mut index = None;
    let mut store = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--spec" => spec_path = it.next().cloned(),
            "--index" => index = it.next().and_then(|v| v.parse::<usize>().ok()),
            "--store" => store = it.next().cloned(),
            _ => return usage(),
        }
    }
    let (Some(spec_path), Some(index), Some(store)) = (spec_path, index, store) else {
        return usage();
    };
    let spec = match load_spec(&spec_path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("ipv6web-sweep worker: {e}");
            return 2;
        }
    };
    match run_worker(&spec, index, &PathBuf::from(store)) {
        Ok(()) => 0,
        Err(e) => {
            eprintln!("ipv6web-sweep worker: {e}");
            1
        }
    }
}

fn emit_spec_main(args: &[String]) -> i32 {
    let mut out = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--out" => out = it.next().cloned(),
            _ => return usage(),
        }
    }
    let mut json = serde_json::to_string_pretty(&smoke_spec()).expect("spec serializes");
    json.push('\n');
    match out {
        Some(path) => {
            if let Err(e) = std::fs::write(&path, json) {
                eprintln!("ipv6web-sweep: cannot write {path}: {e}");
                return 2;
            }
            eprintln!("wrote smoke sweep spec to {path}");
        }
        None => print!("{json}"),
    }
    0
}

fn run_main(args: &[String], worker_prefix: &[&str]) -> i32 {
    let mut spec_path: Option<String> = None;
    let mut store: Option<String> = None;
    let mut procs = ipv6web_par::process_count();
    let mut metrics: Option<String> = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--store" => store = it.next().cloned(),
            "--procs" => {
                let Some(n) = it.next().and_then(|v| v.parse::<usize>().ok()) else {
                    return usage();
                };
                procs = n.max(1);
            }
            "--metrics" => metrics = it.next().cloned(),
            flag if flag.starts_with("--") => return usage(),
            positional if spec_path.is_none() => spec_path = Some(positional.to_string()),
            _ => return usage(),
        }
    }
    let (Some(spec_path), Some(store)) = (spec_path, store) else { return usage() };
    if metrics.is_some() {
        ipv6web_obs::reset();
        ipv6web_obs::enable();
    }
    let spec = match load_spec(&spec_path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("ipv6web-sweep: {e}");
            return 2;
        }
    };
    let worker_exe = match std::env::current_exe() {
        Ok(p) => p,
        Err(e) => {
            eprintln!("ipv6web-sweep: cannot locate own executable: {e}");
            return 2;
        }
    };
    let cfg = SweepConfig {
        spec_path: PathBuf::from(&spec_path),
        store_dir: PathBuf::from(&store),
        procs,
        worker_exe,
        worker_prefix: worker_prefix.iter().map(|s| s.to_string()).collect(),
    };
    match run_sweep(&spec, &cfg) {
        Ok(summary) => {
            // Quarantines are graceful degradation, not failure: the sweep
            // completed with explicit accounting. Exit 0 either way.
            println!(
                "sweep complete: {} studies ({} done, {} quarantined) — results in {}",
                summary.total,
                summary.total - summary.quarantined_on_disk,
                summary.quarantined_on_disk,
                cfg.store_dir.display()
            );
            if let Some(path) = metrics {
                if let Err(e) = write_metrics(&path) {
                    eprintln!("ipv6web-sweep: {e}");
                    return 2;
                }
                eprintln!("wrote sweep metrics to {path}");
            }
            0
        }
        Err(e) => {
            eprintln!("ipv6web-sweep: {e}");
            2
        }
    }
}

/// Entry point shared by the standalone binary (`worker_prefix = []`)
/// and `repro sweep` (`worker_prefix = ["sweep"]`).
pub fn cli_main(args: &[String], worker_prefix: &[&str]) -> i32 {
    match args.first().map(String::as_str) {
        Some("worker") => worker_main(&args[1..]),
        Some("emit-spec") => emit_spec_main(&args[1..]),
        Some("run") => run_main(&args[1..], worker_prefix),
        Some(_) => run_main(args, worker_prefix),
        None => usage(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_spec_expands_to_64_valid_studies() {
        let spec = smoke_spec();
        let cases = spec.expand().unwrap();
        assert_eq!(cases.len(), 64, "8 seeds × 2 parity × 2 timelines × 2 faults");
        for case in &cases {
            assert_eq!(case.scenario.validate(), Ok(()));
        }
        // the chaos indices actually exist in the matrix
        let chaos = spec.chaos();
        assert!(cases.iter().any(|c| chaos.hangs(c.index)));
        assert!(cases.iter().any(|c| chaos.hangs_silent(c.index)));
        assert!(cases.iter().any(|c| chaos.crashes_once(c.index)));
        // tight supervision: hang studies cost seconds, not CI minutes
        let sup = spec.supervision();
        assert!(sup.timeout.as_secs() <= 30);
        assert_eq!(sup.max_attempts, 2);
    }

    #[test]
    fn smoke_spec_roundtrips_through_emitted_json() {
        let mut json = serde_json::to_string_pretty(&smoke_spec()).expect("spec serializes");
        json.push('\n');
        let back: SweepSpec = serde_json::from_str(&json).unwrap();
        assert_eq!(back.expand().unwrap(), smoke_spec().expand().unwrap());
    }

    #[test]
    fn bad_invocations_exit_with_usage() {
        let args = |list: &[&str]| list.iter().map(|s| s.to_string()).collect::<Vec<_>>();
        assert_eq!(cli_main(&args(&[]), &[]), 2, "no args");
        assert_eq!(cli_main(&args(&["run"]), &[]), 2, "no spec/store");
        assert_eq!(cli_main(&args(&["worker", "--bogus"]), &[]), 2);
        assert_eq!(cli_main(&args(&["spec.json", "--unknown-flag"]), &[]), 2);
    }
}
