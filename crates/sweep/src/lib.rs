//! `ipv6web-sweep` — supervised multi-process parameter sweeps.
//!
//! A sweep turns the single-study pipeline into a study *matrix*: a
//! serde-able [`SweepSpec`] crosses seeds, peering-parity levels,
//! adoption-timeline variants, and fault plans over one base scenario,
//! expands deterministically ([`SweepSpec::expand`]), and runs each cell
//! in its own worker OS process — the process tier above
//! `IPV6WEB_THREADS` ([`ipv6web_par::process_count`]). The orchestrator
//! ([`run_sweep`]) supervises the fleet: wall-clock timeouts, heartbeat
//! stall detection, capped-exponential-backoff retries, and
//! quarantine-as-poison after repeated failure, so one pathological
//! study degrades the sweep's coverage instead of aborting it.
//!
//! Progress is durable at study granularity ([`ResultStore`]): one
//! atomically-written record per finished case, scanned on startup for
//! crash-resume. The contract, enforced end-to-end by the acceptance
//! tests: a sweep that loses workers *and* its orchestrator to SIGKILL,
//! restarted, merges to `results.json` / `summary.txt` byte-identical
//! to a clean single-process sequential run.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod aggregate;
pub mod cli;
pub mod orchestrator;
pub mod record;
pub mod spec;
pub mod store;

pub use orchestrator::{backoff_delay, run_sweep, run_worker, SweepConfig, SweepSummary};
pub use record::{StudyMetrics, StudyRecord, StudyStatus, SWEEP_SCHEMA};
pub use spec::{ChaosSpec, StudyCase, Supervision, SupervisionSpec, SweepSpec, XlatAxis};
pub use store::{ResultStore, ScanOutcome};
