//! The supervised multi-process sweep loop.
//!
//! The orchestrator shards the expanded study matrix across up to
//! `procs` worker OS processes (each a re-invocation of our own binary
//! in `worker` mode), and supervises them: per-study wall-clock
//! timeouts (SIGKILL on expiry), heartbeat stall detection, retry with
//! capped exponential backoff, and quarantine-as-poison after
//! `max_attempts` failures — the sweep always completes, with explicit
//! accounting, instead of aborting on one bad study.
//!
//! Crash-resume falls out of the store's one-record-per-finished-case
//! discipline: a restarted orchestrator scans the store, skips every
//! case that already has a record, and re-runs only the rest. Retry
//! counts are deliberately in-memory only — a restart gets fresh
//! attempts, and nothing volatile ever reaches the records, so a
//! killed-and-resumed sweep merges to byte-identical output.

use crate::record::StudyRecord;
use crate::spec::{StudyCase, Supervision, SweepSpec};
use crate::store::ResultStore;
use ipv6web_core::run_study_mode;
use std::io;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// How the orchestrator re-invokes itself for one study.
#[derive(Debug, Clone)]
pub struct SweepConfig {
    /// The spec file workers re-read (and re-expand) to find their case.
    pub spec_path: PathBuf,
    /// The shared result-store directory.
    pub store_dir: PathBuf,
    /// Worker process slots (the process tier of `IPV6WEB_THREADS`).
    pub procs: usize,
    /// Executable to spawn for workers — normally `current_exe()`.
    pub worker_exe: PathBuf,
    /// Arguments in front of `worker …` — `["sweep"]` when the worker
    /// entry point is the multiplexed `repro` binary.
    pub worker_prefix: Vec<String>,
}

/// Accounting for one orchestrator run. All of this is volatile
/// (restart-dependent) and therefore lives here, in obs counters, and on
/// stderr — never in the result store.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct SweepSummary {
    /// Studies in the expanded matrix.
    pub total: usize,
    /// Records found on disk at startup and skipped (crash-resume).
    pub skipped: usize,
    /// Studies completed by this run.
    pub completed: usize,
    /// Studies this run quarantined as poison records.
    pub quarantined: usize,
    /// Quarantine records in the merged store (this run's plus any a
    /// previous, resumed run wrote).
    pub quarantined_on_disk: usize,
    /// Worker re-runs after a failure.
    pub retries: usize,
    /// Workers killed by the wall-clock timeout.
    pub timeouts: usize,
    /// Workers killed by heartbeat stall detection.
    pub stalls: usize,
}

/// Why a worker attempt failed. The mapping to a quarantine `reason`
/// string must be deterministic per failure mode: quarantine records are
/// covered by the byte-identity contract.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FailureKind {
    /// Killed: study exceeded the wall-clock timeout.
    Timeout,
    /// Killed: heartbeat file stopped moving.
    Stall,
    /// Worker exited with this code but left no record.
    Exit(i32),
    /// Worker died on a signal (crash, OOM kill, external SIGKILL).
    Signal,
}

impl FailureKind {
    /// The deterministic quarantine reason for this failure mode.
    pub fn reason(self, sup: &Supervision) -> String {
        match self {
            FailureKind::Timeout => format!("timed out after {}s", sup.timeout.as_secs()),
            FailureKind::Stall => {
                format!("heartbeat stalled for {}s", sup.heartbeat_stall.as_secs())
            }
            FailureKind::Exit(0) => "worker exited without writing a record".to_string(),
            FailureKind::Exit(code) => format!("worker exited with code {code}"),
            FailureKind::Signal => "worker died on a signal".to_string(),
        }
    }
}

/// Backoff before re-running a study that has failed `attempts` times
/// (1-based): `base × 2^(attempts−1)`, capped.
pub fn backoff_delay(attempts: u32, sup: &Supervision) -> Duration {
    let factor = 1u32.checked_shl(attempts.saturating_sub(1)).unwrap_or(u32::MAX);
    sup.backoff_base.checked_mul(factor).map_or(sup.backoff_cap, |d| d.min(sup.backoff_cap))
}

enum CaseState {
    Waiting { attempts: u32, eligible_at: Instant },
    Running { attempts: u32 },
    Finished,
}

struct Pending {
    case: StudyCase,
    state: CaseState,
}

struct Slot {
    child: Child,
    pending_idx: usize,
    key: String,
    started: Instant,
    last_beat: Option<u64>,
    beat_seen: Instant,
    kill: Option<FailureKind>,
}

const POLL: Duration = Duration::from_millis(25);

fn spawn_worker(cfg: &SweepConfig, index: usize, threads: usize) -> io::Result<Child> {
    let mut cmd = Command::new(&cfg.worker_exe);
    cmd.args(&cfg.worker_prefix)
        .arg("worker")
        .arg("--spec")
        .arg(&cfg.spec_path)
        .arg("--index")
        .arg(index.to_string())
        .arg("--store")
        .arg(&cfg.store_dir)
        .env(ipv6web_par::THREADS_ENV, threads.to_string())
        .stdout(Stdio::null())
        .stdin(Stdio::null());
    cmd.spawn()
}

/// Runs (or resumes) the sweep described by `spec` under `cfg`.
///
/// Returns once every study has a record — done or quarantined — and the
/// merged `results.json` / `summary.txt` have been rebuilt. Worker
/// failures never propagate as errors; only orchestrator-side I/O
/// problems (spawn failure, an unwritable store) do.
pub fn run_sweep(spec: &SweepSpec, cfg: &SweepConfig) -> io::Result<SweepSummary> {
    let cases = spec.expand().map_err(|e| io::Error::new(io::ErrorKind::InvalidInput, e))?;
    let sup = spec.supervision();
    let store = ResultStore::open(&cfg.store_dir)?;
    let scan = store.scan()?;
    let have: std::collections::BTreeSet<&str> =
        scan.records.iter().map(|r| r.key.as_str()).collect();

    let mut summary = SweepSummary { total: cases.len(), ..SweepSummary::default() };
    ipv6web_obs::add("sweep.studies", cases.len() as u64);
    let now = Instant::now();
    let mut pending: Vec<Pending> = cases
        .into_iter()
        .map(|case| {
            let state = if have.contains(case.key().as_str()) {
                summary.skipped += 1;
                CaseState::Finished
            } else {
                CaseState::Waiting { attempts: 0, eligible_at: now }
            };
            Pending { case, state }
        })
        .collect();
    ipv6web_obs::add("sweep.skipped_resume", summary.skipped as u64);
    if summary.skipped > 0 {
        eprintln!(
            "sweep: resuming — {} of {} studies already have records",
            summary.skipped, summary.total
        );
    }

    let procs = cfg.procs.max(1);
    let mut slots: Vec<Option<Slot>> = (0..procs).map(|_| None).collect();

    loop {
        // --- supervise + reap ------------------------------------------------
        for slot in slots.iter_mut() {
            let Some(active) = slot.as_mut() else { continue };
            match active.child.try_wait()? {
                Some(status) => {
                    let active = slot.take().expect("slot occupied");
                    let finished = store.record_path(&active.key).exists();
                    let idx = active.pending_idx;
                    if finished {
                        let _ = std::fs::remove_file(store.heartbeat_path(&active.key));
                        pending[idx].state = CaseState::Finished;
                        summary.completed += 1;
                        ipv6web_obs::inc("sweep.completed");
                        continue;
                    }
                    let kind = active.kill.unwrap_or_else(|| match status.code() {
                        Some(code) => FailureKind::Exit(code),
                        None => FailureKind::Signal,
                    });
                    let attempts = match pending[idx].state {
                        CaseState::Running { attempts } => attempts,
                        _ => 0,
                    } + 1;
                    if attempts >= sup.max_attempts {
                        let rec = StudyRecord::quarantined(&pending[idx].case, &kind.reason(&sup));
                        store.save(&rec)?;
                        pending[idx].state = CaseState::Finished;
                        summary.quarantined += 1;
                        ipv6web_obs::inc("sweep.quarantined");
                        eprintln!(
                            "sweep: study {} quarantined after {attempts} attempts: {}",
                            active.key,
                            kind.reason(&sup)
                        );
                    } else {
                        let delay = backoff_delay(attempts, &sup);
                        pending[idx].state =
                            CaseState::Waiting { attempts, eligible_at: Instant::now() + delay };
                        summary.retries += 1;
                        ipv6web_obs::inc("sweep.retries");
                        eprintln!(
                            "sweep: study {} attempt {attempts} failed ({}); retrying in {:?}",
                            active.key,
                            kind.reason(&sup),
                            delay
                        );
                    }
                }
                None => {
                    // Still running: enforce the wall clock, then the
                    // heartbeat. Kill is SIGKILL (`Child::kill` on Unix);
                    // the reap above classifies it next poll via `kill`.
                    if active.kill.is_some() {
                        continue; // already killed, waiting for the reap
                    }
                    if active.started.elapsed() >= sup.timeout {
                        active.kill = Some(FailureKind::Timeout);
                        summary.timeouts += 1;
                        ipv6web_obs::inc("sweep.timeouts");
                        active.child.kill()?;
                        continue;
                    }
                    let beat = store.read_beat(&active.key);
                    if beat != active.last_beat {
                        active.last_beat = beat;
                        active.beat_seen = Instant::now();
                    } else if active.beat_seen.elapsed() >= sup.heartbeat_stall {
                        active.kill = Some(FailureKind::Stall);
                        summary.stalls += 1;
                        ipv6web_obs::inc("sweep.heartbeat_stalls");
                        active.child.kill()?;
                    }
                }
            }
        }

        // --- fill free slots -------------------------------------------------
        for (slot_idx, slot) in slots.iter_mut().enumerate() {
            if slot.is_some() {
                continue;
            }
            let now = Instant::now();
            let Some(idx) = pending.iter().position(
                |p| matches!(p.state, CaseState::Waiting { eligible_at, .. } if eligible_at <= now),
            ) else {
                continue;
            };
            let threads = ipv6web_par::process_share(procs, slot_idx);
            let child = spawn_worker(cfg, pending[idx].case.index, threads)?;
            let key = pending[idx].case.key();
            let attempts = match pending[idx].state {
                CaseState::Waiting { attempts, .. } => attempts,
                _ => 0,
            };
            pending[idx].state = CaseState::Running { attempts };
            *slot = Some(Slot {
                child,
                pending_idx: idx,
                key,
                started: now,
                last_beat: None,
                beat_seen: now,
                kill: None,
            });
        }

        let busy = slots.iter().any(Option::is_some);
        let waiting = pending.iter().any(|p| matches!(p.state, CaseState::Waiting { .. }));
        if !busy && !waiting {
            break;
        }
        std::thread::sleep(POLL);
    }

    // Merge: everything on disk, sorted by index — identical bytes no
    // matter how many orchestrator runs (or processes) it took.
    let final_scan = store.scan()?;
    summary.quarantined_on_disk = final_scan
        .records
        .iter()
        .filter(|r| r.status == crate::record::StudyStatus::Quarantined)
        .count();
    store.write_merged(&final_scan.records)?;
    eprintln!(
        "sweep: {} studies — {} completed now, {} resumed, {} quarantined \
         ({} retries, {} timeouts, {} stalls)",
        summary.total,
        summary.completed,
        summary.skipped,
        summary.quarantined,
        summary.retries,
        summary.timeouts,
        summary.stalls
    );
    Ok(summary)
}

/// Runs one study inside a worker process: picks `index` out of the
/// spec's expansion, applies any scripted chaos, heartbeats while the
/// study runs, and writes the case's record (atomic) on success.
pub fn run_worker(spec: &SweepSpec, index: usize, store_dir: &Path) -> Result<(), String> {
    let cases = spec.expand()?;
    let case = cases
        .into_iter()
        .find(|c| c.index == index)
        .ok_or_else(|| format!("case index {index} out of range"))?;
    let chaos = spec.chaos();
    let sup = spec.supervision();
    let store = ResultStore::open(store_dir).map_err(|e| e.to_string())?;
    let key = case.key();

    if chaos.crashes_once(index) {
        let marker = store.crash_marker_path(&key);
        if !marker.exists() {
            // First attempt: leave the marker, then die exactly as a
            // crashing worker would — no record, no cleanup.
            std::fs::write(&marker, b"crash_once\n").map_err(|e| e.to_string())?;
            eprintln!("sweep worker {key}: chaos crash_once — aborting");
            std::process::abort();
        }
    }

    if chaos.hangs_silent(index) {
        // Hang without heartbeats: stall detection must reap us. The
        // self-abort far past the supervision timeout only matters when
        // we were orphaned by an orchestrator SIGKILL — it caps how long
        // a leaked chaos worker can linger, and writes no record.
        std::thread::sleep(sup.timeout.saturating_mul(20));
        std::process::abort();
    }

    // Heartbeat thread: bump a counter file every interval until stopped.
    let stop = Arc::new(AtomicBool::new(false));
    let hb = {
        let stop = Arc::clone(&stop);
        let store = store.clone();
        let key = key.clone();
        let interval = sup.heartbeat_interval;
        std::thread::spawn(move || {
            let mut count = 0u64;
            while !stop.load(Ordering::Relaxed) {
                count += 1;
                let _ = store.beat(&key, count);
                std::thread::sleep(interval);
            }
        })
    };

    if chaos.hangs(index) {
        // Hang *with* heartbeats: only the wall-clock timeout reaps us
        // (same orphan cap as above for a supervisor that never comes).
        std::thread::sleep(sup.timeout.saturating_mul(20));
        std::process::abort();
    }

    let result = run_study_mode(&case.scenario, case.mode());
    stop.store(true, Ordering::Relaxed);
    let _ = hb.join();
    match result {
        Ok(study) => {
            let rec = StudyRecord::done(&case, &study.report);
            store.save(&rec).map_err(|e| e.to_string())
        }
        Err(e) => Err(format!("study {key} failed: {e}")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::SupervisionSpec;

    fn sup(base_ms: u64, cap_ms: u64) -> Supervision {
        SupervisionSpec {
            backoff_base_ms: Some(base_ms),
            backoff_cap_ms: Some(cap_ms),
            timeout_secs: Some(10),
            heartbeat_stall_secs: Some(30),
            ..SupervisionSpec::default()
        }
        .resolve()
    }

    #[test]
    fn backoff_doubles_then_caps() {
        let s = sup(100, 800);
        assert_eq!(backoff_delay(1, &s), Duration::from_millis(100));
        assert_eq!(backoff_delay(2, &s), Duration::from_millis(200));
        assert_eq!(backoff_delay(3, &s), Duration::from_millis(400));
        assert_eq!(backoff_delay(4, &s), Duration::from_millis(800));
        assert_eq!(backoff_delay(5, &s), Duration::from_millis(800), "capped");
        assert_eq!(backoff_delay(64, &s), Duration::from_millis(800), "shift overflow capped");
    }

    #[test]
    fn failure_reasons_are_deterministic_per_mode() {
        let s = sup(100, 800);
        assert_eq!(FailureKind::Timeout.reason(&s), "timed out after 10s");
        assert_eq!(FailureKind::Stall.reason(&s), "heartbeat stalled for 30s");
        assert_eq!(FailureKind::Exit(3).reason(&s), "worker exited with code 3");
        assert_eq!(FailureKind::Exit(0).reason(&s), "worker exited without writing a record");
        assert_eq!(FailureKind::Signal.reason(&s), "worker died on a signal");
        // identical supervision → identical strings, run after run: the
        // byte-identity contract extends to quarantine records
        assert_eq!(FailureKind::Timeout.reason(&s), FailureKind::Timeout.reason(&s));
    }
}
