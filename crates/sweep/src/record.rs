//! Per-study result records — the unit of crash-safe sweep progress.
//!
//! One record is written (atomic temp+rename) when a study completes or
//! is quarantined, and *only* then: an interrupted study leaves nothing
//! behind, so "record exists" is exactly "this case is finished". Records
//! carry **no volatile fields** — no timestamps, durations, attempt
//! counts, or host names — because the crash-resume contract is that a
//! kill-riddled sweep merges to output byte-identical to a clean run, and
//! anything that varies run-to-run would break that. Volatile accounting
//! (retries, timeouts) lives in obs counters and the orchestrator's
//! stderr log instead.

use crate::spec::StudyCase;
use ipv6web_core::Report;
use serde::{DeError, Deserialize, Serialize, Value};

/// Schema tag written into the merged results document.
pub const SWEEP_SCHEMA: &str = "ipv6web-sweep/v1";

/// Terminal state of one study. Serialized lowercase, like `JobState`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StudyStatus {
    /// The study ran to completion; metrics are present.
    Done,
    /// The study failed `max_attempts` times and was recorded as poison;
    /// the sweep completed without it.
    Quarantined,
}

impl StudyStatus {
    /// Lowercase wire name.
    pub fn name(self) -> &'static str {
        match self {
            StudyStatus::Done => "done",
            StudyStatus::Quarantined => "quarantined",
        }
    }

    /// Inverse of [`StudyStatus::name`].
    pub fn parse(s: &str) -> Option<StudyStatus> {
        match s {
            "done" => Some(StudyStatus::Done),
            "quarantined" => Some(StudyStatus::Quarantined),
            _ => None,
        }
    }
}

impl Serialize for StudyStatus {
    fn to_value(&self) -> Value {
        Value::Str(self.name().to_string())
    }
}

impl Deserialize for StudyStatus {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Str(s) => StudyStatus::parse(s)
                .ok_or_else(|| DeError::new(format!("unknown study status `{s}`"))),
            other => Err(DeError::new(format!("study status must be a string, got {other:?}"))),
        }
    }
}

/// The headline metrics extracted from a finished study's [`Report`] —
/// the columns the aggregate layer queries. Everything here is a pure
/// function of the report, which is itself a pure function of the
/// scenario, so metrics are deterministic per case.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StudyMetrics {
    /// H1 (v6 control-plane parity) verdict.
    pub h1_holds: bool,
    /// H2 (v6 data-plane quality) verdict.
    pub h2_holds: bool,
    /// Worst per-vantage H1 explained share.
    pub h1_min_share: f64,
    /// Worst per-vantage H2 explained share.
    pub h2_min_share: f64,
    /// Mean over vantages of `1 − H2 share`: the fraction of DP
    /// destination ASes whose IPv6 quality is *not* comparable-or-
    /// explained — the "H2 loss rate" the parity tables aggregate.
    pub h2_loss_rate: f64,
    /// Sites kept after sanitization, summed over vantages (Table 2).
    pub sites_kept: u64,
    /// IPv6 destination ASes, union across vantages (Table 2 "All").
    pub dest_ases_v6: u64,
}

fn min_share(shares: &[(String, f64)]) -> f64 {
    shares.iter().map(|(_, s)| *s).fold(f64::INFINITY, f64::min).min(1.0)
}

fn mean_loss(shares: &[(String, f64)]) -> f64 {
    if shares.is_empty() {
        return 0.0;
    }
    shares.iter().map(|(_, s)| 1.0 - *s).sum::<f64>() / shares.len() as f64
}

impl StudyMetrics {
    /// Extracts the metric columns from a report.
    pub fn from_report(r: &Report) -> StudyMetrics {
        StudyMetrics {
            h1_holds: r.h1.holds,
            h2_holds: r.h2.holds,
            h1_min_share: min_share(&r.h1.per_vantage_share),
            h2_min_share: min_share(&r.h2.per_vantage_share),
            h2_loss_rate: mean_loss(&r.h2.per_vantage_share),
            sites_kept: r.table2.sites_kept.iter().map(|&n| n as u64).sum(),
            dest_ases_v6: r.table2.all[1] as u64,
        }
    }
}

/// One study's persisted result.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StudyRecord {
    /// `{index:05}-{config_hash:016x}` — see `StudyCase::key`.
    pub key: String,
    /// Position in the spec's expansion order.
    pub index: u64,
    /// Hex config hash of the case's scenario.
    pub config_hash: String,
    /// Seed-axis value.
    pub seed: u64,
    /// Parity-axis value.
    pub peering_parity: f64,
    /// Timeline-axis label.
    pub timeline: String,
    /// Fault-axis label.
    pub faults: String,
    /// Xlat-axis label.
    pub xlat: String,
    /// Terminal state.
    pub status: StudyStatus,
    /// Deterministic failure classification when quarantined (e.g.
    /// `timed out after 10s`); `None` when done.
    pub reason: Option<String>,
    /// Metric columns when done; `None` when quarantined.
    pub metrics: Option<StudyMetrics>,
}

impl StudyRecord {
    fn base(case: &StudyCase) -> StudyRecord {
        StudyRecord {
            key: case.key(),
            index: case.index as u64,
            config_hash: format!("{:016x}", case.scenario.config_hash()),
            seed: case.seed,
            peering_parity: case.peering_parity,
            timeline: case.timeline.clone(),
            faults: case.faults.clone(),
            xlat: case.xlat.clone(),
            status: StudyStatus::Done,
            reason: None,
            metrics: None,
        }
    }

    /// A completed study's record.
    pub fn done(case: &StudyCase, report: &Report) -> StudyRecord {
        StudyRecord { metrics: Some(StudyMetrics::from_report(report)), ..Self::base(case) }
    }

    /// A poison record for a study that failed out of its attempts.
    /// `reason` must be deterministic for the failure mode (the
    /// byte-identity contract covers quarantine records too).
    pub fn quarantined(case: &StudyCase, reason: &str) -> StudyRecord {
        StudyRecord {
            status: StudyStatus::Quarantined,
            reason: Some(reason.to_string()),
            ..Self::base(case)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::SweepSpec;

    fn case() -> StudyCase {
        SweepSpec { scale: Some("quick".to_string()), ..SweepSpec::default() }
            .expand()
            .unwrap()
            .remove(0)
    }

    #[test]
    fn status_roundtrips_lowercase() {
        for st in [StudyStatus::Done, StudyStatus::Quarantined] {
            assert_eq!(StudyStatus::parse(st.name()), Some(st));
            let json = serde_json::to_string(&st).unwrap();
            assert_eq!(json, format!("\"{}\"", st.name()));
            assert_eq!(serde_json::from_str::<StudyStatus>(&json).unwrap(), st);
        }
        assert!(serde_json::from_str::<StudyStatus>("\"maybe\"").is_err());
    }

    #[test]
    fn quarantine_record_roundtrips() {
        let rec = StudyRecord::quarantined(&case(), "timed out after 10s");
        assert_eq!(rec.status, StudyStatus::Quarantined);
        assert!(rec.metrics.is_none());
        let json = serde_json::to_string_pretty(&rec).unwrap();
        let back: StudyRecord = serde_json::from_str(&json).unwrap();
        assert_eq!(back, rec);
        assert_eq!(back.key, case().key());
    }

    #[test]
    fn metrics_shares_handle_empty_and_known_values() {
        assert_eq!(min_share(&[]), 1.0);
        assert_eq!(mean_loss(&[]), 0.0);
        let shares = vec![("A".to_string(), 0.9), ("B".to_string(), 0.7)];
        assert_eq!(min_share(&shares), 0.7);
        let loss = mean_loss(&shares);
        assert!((loss - 0.2).abs() < 1e-12, "got {loss}");
    }
}
