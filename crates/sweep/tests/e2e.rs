//! The ISSUE 8 acceptance run, end to end over real OS processes.
//!
//! One 64-study sweep (the `emit-spec` smoke spec, chaos included) is run
//! twice from the same spec file:
//!
//! * a clean reference pass, one worker process at a time (`--procs 1`);
//! * a chaos pass with two worker processes that is SIGKILLed mid-sweep
//!   — orchestrator and whatever workers it had in flight — and then
//!   restarted to completion.
//!
//! The spec itself scripts the rest of the required failures: one study
//! hangs with heartbeats until the wall-clock timeout kills it, one hangs
//! silently until stall detection kills it (both end quarantined after
//! `max_attempts`), and one worker SIGABRTs mid-study on its first
//! attempt and succeeds on retry. The resumed chaos store must merge to
//! byte-identical `results.json`, `summary.txt`, and per-study records.

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::process::Command;
use std::time::{Duration, Instant};

const EXE: &str = env!("CARGO_BIN_EXE_ipv6web-sweep");

fn tmp_root() -> PathBuf {
    let dir = std::env::temp_dir().join(format!("ipv6web-sweep-e2e-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn run_to_completion(spec: &Path, store: &Path, procs: usize) {
    let status = Command::new(EXE)
        .args(["run"])
        .arg(spec)
        .arg("--store")
        .arg(store)
        .args(["--procs", &procs.to_string()])
        .status()
        .expect("spawn sweep");
    assert!(status.success(), "sweep run into {} failed: {status}", store.display());
}

fn record_files(store: &Path) -> BTreeMap<String, Vec<u8>> {
    let mut out = BTreeMap::new();
    for entry in std::fs::read_dir(store).unwrap() {
        let path = entry.unwrap().path();
        let name = path.file_name().unwrap().to_str().unwrap().to_string();
        if name.starts_with("study-") && name.ends_with(".json") {
            out.insert(name, std::fs::read(&path).unwrap());
        }
    }
    out
}

fn read(store: &Path, name: &str) -> Vec<u8> {
    std::fs::read(store.join(name))
        .unwrap_or_else(|e| panic!("read {name} in {}: {e}", store.display()))
}

#[test]
fn killed_sweep_resumes_to_byte_identical_output() {
    let root = tmp_root();
    let spec_path = root.join("sweep.json");
    let spec = ipv6web_sweep::cli::smoke_spec();
    let mut json = serde_json::to_string_pretty(&spec).unwrap();
    json.push('\n');
    std::fs::write(&spec_path, json).unwrap();
    let total = spec.expand().unwrap().len();
    assert!(total >= 64, "acceptance requires a >=64-study sweep, got {total}");

    // --- clean reference: one process at a time, straight through -------
    let ref_dir = root.join("reference");
    run_to_completion(&spec_path, &ref_dir, 1);
    let ref_records = record_files(&ref_dir);
    assert_eq!(ref_records.len(), total, "reference run must finish every study");

    // --- chaos: two processes, SIGKILL the orchestrator mid-sweep -------
    let chaos_dir = root.join("chaos");
    let mut child = Command::new(EXE)
        .args(["run"])
        .arg(&spec_path)
        .arg("--store")
        .arg(&chaos_dir)
        .args(["--procs", "2"])
        .spawn()
        .expect("spawn chaos sweep");
    let deadline = Instant::now() + Duration::from_secs(120);
    loop {
        let done = if chaos_dir.exists() { record_files(&chaos_dir).len() } else { 0 };
        if done >= 8 {
            break;
        }
        assert!(Instant::now() < deadline, "chaos sweep wrote only {done} records in 120s");
        match child.try_wait().expect("poll chaos sweep") {
            Some(status) => panic!("chaos sweep finished before we could kill it: {status}"),
            None => std::thread::sleep(Duration::from_millis(25)),
        }
    }
    child.kill().expect("SIGKILL orchestrator"); // Child::kill is SIGKILL on Unix
    child.wait().expect("reap orchestrator");
    // Orphaned workers may still land a few records; the sweep itself
    // must be visibly incomplete when the restart begins.
    assert!(
        record_files(&chaos_dir).len() < total,
        "orchestrator died but the sweep still completed — kill came too late"
    );

    // --- restart: resume from the store, finish, merge ------------------
    run_to_completion(&spec_path, &chaos_dir, 2);

    // --- byte-identity ---------------------------------------------------
    let chaos_records = record_files(&chaos_dir);
    assert_eq!(chaos_records.len(), total);
    assert_eq!(ref_records, chaos_records, "per-study records must be byte-identical");
    assert_eq!(
        read(&ref_dir, "results.json"),
        read(&chaos_dir, "results.json"),
        "merged results.json must be byte-identical"
    );
    assert_eq!(
        read(&ref_dir, "summary.txt"),
        read(&chaos_dir, "summary.txt"),
        "summary.txt must be byte-identical"
    );

    // --- chaos accounting ------------------------------------------------
    let results: serde_json::Value =
        serde_json::from_str(std::str::from_utf8(&read(&chaos_dir, "results.json")).unwrap())
            .unwrap();
    let obj = match &results {
        serde_json::Value::Obj(fields) => fields,
        other => panic!("results.json root: {other:?}"),
    };
    let quarantined = obj
        .iter()
        .find(|(k, _)| k == "quarantined")
        .map(|(_, v)| match v {
            serde_json::Value::U64(n) => *n,
            other => panic!("quarantined: {other:?}"),
        })
        .unwrap();
    assert_eq!(quarantined, 2, "the hang and hang_silent studies end as poison records");

    let summary = String::from_utf8(read(&chaos_dir, "summary.txt")).unwrap();
    assert!(summary.contains("2 quarantined"), "summary accounts for quarantines:\n{summary}");
    assert!(summary.contains("timed out after"), "hang quarantine reason:\n{summary}");
    assert!(summary.contains("heartbeat stalled for"), "stall quarantine reason:\n{summary}");

    // The crash-once chaos worker SIGABRTed mid-study on its first
    // attempt (the marker is the proof it ran), then completed on retry:
    // its record must be a Done row, not a quarantine.
    let chaos_spec = spec.chaos();
    let crash_case = spec
        .expand()
        .unwrap()
        .into_iter()
        .find(|c| chaos_spec.crashes_once(c.index))
        .expect("spec scripts a crash_once study");
    for dir in [&ref_dir, &chaos_dir] {
        assert!(
            dir.join(format!("{}.crashed", crash_case.key())).exists(),
            "crash_once marker missing in {}",
            dir.display()
        );
        let text =
            String::from_utf8(read(dir, &format!("study-{}.json", crash_case.key()))).unwrap();
        assert!(text.contains("\"done\""), "crash_once study must recover to done: {text}");
    }

    std::fs::remove_dir_all(&root).unwrap();
}
