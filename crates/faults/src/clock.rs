//! Simulated time for fault handling: a per-probe clock and the
//! retry/backoff policy that spends it.

use serde::{Deserialize, Serialize};

/// How a consumer retries through injected faults.
///
/// All times are simulated milliseconds — nothing here reads a wall clock,
/// so retry behavior is as deterministic as the faults themselves.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RetryPolicy {
    /// Attempts per operation (first try included) before giving up.
    pub max_attempts: u32,
    /// Backoff before retry 1, ms; doubles per retry.
    pub base_backoff_ms: f64,
    /// Ceiling on a single backoff interval, ms.
    pub backoff_cap_ms: f64,
    /// Total simulated time one probe may spend on fault handling before
    /// it is abandoned, ms.
    pub probe_budget_ms: f64,
    /// Cost charged for one timed-out exchange (DNS query or TCP connect),
    /// ms.
    pub timeout_ms: f64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        Self::paper()
    }
}

impl RetryPolicy {
    /// A resolver-library-like default: 4 tries, 250 ms initial backoff
    /// capped at 2 s, 3 s per timeout, 15 s of fault handling per probe.
    pub fn paper() -> Self {
        RetryPolicy {
            max_attempts: 4,
            base_backoff_ms: 250.0,
            backoff_cap_ms: 2_000.0,
            probe_budget_ms: 15_000.0,
            timeout_ms: 3_000.0,
        }
    }

    /// Capped exponential backoff before retry `attempt` (0-based: the
    /// backoff taken after the `attempt`-th failure).
    pub fn backoff_ms(&self, attempt: u32) -> f64 {
        let exp = 2f64.powi(attempt.min(30) as i32);
        (self.base_backoff_ms * exp).min(self.backoff_cap_ms)
    }

    /// Sanity-checks the policy.
    pub fn validate(&self) -> Result<(), String> {
        if self.max_attempts == 0 {
            return Err("retry.max_attempts must be at least 1".into());
        }
        for (name, v) in [
            ("base_backoff_ms", self.base_backoff_ms),
            ("backoff_cap_ms", self.backoff_cap_ms),
            ("probe_budget_ms", self.probe_budget_ms),
            ("timeout_ms", self.timeout_ms),
        ] {
            if !v.is_finite() || v < 0.0 {
                return Err(format!("retry.{name} must be finite and non-negative"));
            }
        }
        Ok(())
    }
}

/// Simulated per-probe clock with a fault-handling budget.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultClock {
    now_ms: f64,
    budget_ms: f64,
}

impl FaultClock {
    /// A clock at zero with the given budget.
    pub fn new(budget_ms: f64) -> Self {
        FaultClock { now_ms: 0.0, budget_ms }
    }

    /// Elapsed simulated time, ms.
    pub fn now_ms(&self) -> f64 {
        self.now_ms
    }

    /// Advances simulated time.
    pub fn advance(&mut self, ms: f64) {
        self.now_ms += ms.max(0.0);
    }

    /// True once the fault-handling budget is spent.
    pub fn expired(&self) -> bool {
        self.now_ms >= self.budget_ms
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_doubles_then_caps() {
        let p = RetryPolicy::paper();
        assert_eq!(p.backoff_ms(0), 250.0);
        assert_eq!(p.backoff_ms(1), 500.0);
        assert_eq!(p.backoff_ms(2), 1000.0);
        assert_eq!(p.backoff_ms(3), 2000.0);
        assert_eq!(p.backoff_ms(10), 2000.0, "capped");
        assert_eq!(p.backoff_ms(100), 2000.0, "huge attempts must not overflow");
    }

    #[test]
    fn clock_budget() {
        let mut c = FaultClock::new(1000.0);
        assert!(!c.expired());
        c.advance(400.0);
        c.advance(-50.0); // negative advances are ignored
        assert_eq!(c.now_ms(), 400.0);
        c.advance(600.0);
        assert!(c.expired());
    }

    #[test]
    fn policy_validation() {
        assert!(RetryPolicy::paper().validate().is_ok());
        let mut p = RetryPolicy::paper();
        p.max_attempts = 0;
        assert!(p.validate().is_err());
        let mut p = RetryPolicy::paper();
        p.timeout_ms = f64::NAN;
        assert!(p.validate().is_err());
        let mut p = RetryPolicy::paper();
        p.base_backoff_ms = -1.0;
        assert!(p.validate().is_err());
    }
}
