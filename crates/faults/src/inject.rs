//! The pure fault decision function.
//!
//! Every decision derives its own RNG stream from
//! `(seed, "fault:<kind>:<entity...>")`, so outcomes depend only on the
//! plan, the seed, and the entity being asked about — never on thread
//! scheduling or on how many other questions were asked first.

use crate::plan::{DnsFaultKind, FaultPlan, HttpFaultKind};
use crate::record_injection;
use ipv6web_stats::{coin, derive_rng};
use ipv6web_topology::{EdgeId, Family, Topology};

/// How injected link faults impact one probe's path for one family.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct LinkImpact {
    /// A flapped (down) link sits on the path: the exchange black-holes.
    pub down: bool,
    /// Extra loss probability composed from active loss bursts on the path.
    pub extra_loss: f64,
}

impl LinkImpact {
    /// True when the path is entirely unaffected.
    pub fn is_clear(&self) -> bool {
        !self.down && self.extra_loss == 0.0
    }
}

/// Deterministic fault decisions for one `(plan, seed)` pair.
///
/// All methods are pure with respect to scheduling; the only side effect is
/// obs counter recording (itself scheduling-invariant) on methods
/// documented to count.
#[derive(Debug, Clone)]
pub struct FaultInjector {
    plan: FaultPlan,
    seed: u64,
}

impl FaultInjector {
    /// Wraps a plan with the campaign seed.
    pub fn new(plan: FaultPlan, seed: u64) -> Self {
        FaultInjector { plan, seed }
    }

    /// The plan being injected.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Decides whether DNS query `attempt` for `(vantage, site, qtype)` in
    /// `(week, salt)` is disrupted. Records `faults.injected.dns_*` on a
    /// hit. First matching window wins.
    pub fn dns_fault(
        &self,
        vantage: &str,
        site: u32,
        qtype: &str,
        week: u32,
        salt: u32,
        attempt: u32,
    ) -> Option<DnsFaultKind> {
        for (i, f) in self.plan.dns_faults.iter().enumerate() {
            if week < f.from_week || week >= f.from_week + f.weeks {
                continue;
            }
            let label = format!("fault:dns:{i}:{vantage}:{site}:{qtype}:{week}:{salt}:{attempt}");
            if coin(&mut derive_rng(self.seed, &label), f.prob) {
                record_injection(match f.kind {
                    DnsFaultKind::ServFail => "faults.injected.dns_servfail",
                    DnsFaultKind::Timeout => "faults.injected.dns_timeout",
                    DnsFaultKind::Truncated => "faults.injected.dns_truncated",
                });
                return Some(f.kind);
            }
        }
        None
    }

    /// Decides whether HTTP exchange `attempt` in `phase` (header fetch or
    /// a timed download) for `(vantage, site, family)` in `(week, salt)` is
    /// disrupted. Returns the kind plus the stall duration (meaningful for
    /// [`HttpFaultKind::Stall`] only). Records `faults.injected.http_*` on
    /// a hit.
    #[allow(clippy::too_many_arguments)] // the fault key IS the argument list
    pub fn http_fault(
        &self,
        vantage: &str,
        site: u32,
        family: Family,
        phase: &str,
        week: u32,
        salt: u32,
        attempt: u32,
    ) -> Option<(HttpFaultKind, f64)> {
        for (i, f) in self.plan.http_faults.iter().enumerate() {
            if week < f.from_week || week >= f.from_week + f.weeks {
                continue;
            }
            let label = format!(
                "fault:http:{i}:{vantage}:{site}:{family:?}:{phase}:{week}:{salt}:{attempt}"
            );
            if coin(&mut derive_rng(self.seed, &label), f.prob) {
                record_injection(match f.kind {
                    HttpFaultKind::Stall => "faults.injected.http_stall",
                    HttpFaultKind::Reset => "faults.injected.http_reset",
                    HttpFaultKind::Truncate => "faults.injected.http_truncate",
                });
                return Some((f.kind, f.stall_ms));
            }
        }
        None
    }

    /// Computes link-fault impact for one family's path (`edges`) in
    /// `week`. Per-edge flap/burst membership is sampled once per spec and
    /// edge — stable across the whole window and across probes — so a down
    /// link stays down for every probe that crosses it. Records
    /// `faults.injected.link_down` / `faults.injected.loss_burst` on a hit
    /// (a down link short-circuits the loss scan).
    pub fn link_impact(&self, week: u32, family: Family, edges: &[EdgeId]) -> LinkImpact {
        for (i, f) in self.plan.link_flaps.iter().enumerate() {
            if f.family != family || week < f.from_week || week >= f.from_week + f.weeks {
                continue;
            }
            for e in edges {
                let label = format!("fault:linkflap:{i}:{}", e.0);
                if coin(&mut derive_rng(self.seed, &label), f.edge_frac) {
                    record_injection("faults.injected.link_down");
                    return LinkImpact { down: true, extra_loss: 0.0 };
                }
            }
        }
        let mut keep = 1.0f64;
        let mut hit = false;
        for (i, f) in self.plan.loss_bursts.iter().enumerate() {
            if f.family != family || week < f.from_week || week >= f.from_week + f.weeks {
                continue;
            }
            for e in edges {
                let label = format!("fault:lossburst:{i}:{}", e.0);
                if coin(&mut derive_rng(self.seed, &label), f.edge_frac) {
                    keep *= 1.0 - f.extra_loss;
                    hit = true;
                }
            }
        }
        if hit {
            record_injection("faults.injected.loss_burst");
        }
        LinkImpact { down: false, extra_loss: 1.0 - keep }
    }

    /// True when `vantage` is dark in `week`. Pure — the caller records the
    /// outage (once per dark week, guarded against checkpoint replay).
    pub fn vantage_out(&self, vantage: &str, week: u32) -> bool {
        self.plan
            .vantage_outages
            .iter()
            .any(|o| o.vantage == vantage && week >= o.from_week && week < o.from_week + o.weeks)
    }

    /// True when NAT64 gateway `gateway` (by gateway index, not AS id) is
    /// down in `week`. Per-gateway outage membership is sampled once per
    /// spec and gateway — stable across the whole window and every probe —
    /// so a dead gateway stays dead until its scheduled recovery. Pure; the
    /// caller records `faults.injected.xlat` when a translated path
    /// actually hits the dead gateway.
    pub fn xlat_out(&self, gateway: usize, week: u32) -> bool {
        self.plan.xlat_outages.iter().enumerate().any(|(i, o)| {
            week >= o.from_week
                && week < o.from_week + o.weeks
                && coin(
                    &mut derive_rng(self.seed, &format!("fault:xlat:{i}:{gateway}")),
                    o.gateway_frac,
                )
        })
    }

    /// Materializes the plan's BGP flaps against a topology: for each flap,
    /// samples eligible edges (same eligibility rules as the scenario's
    /// scheduled route-change event) into concrete gain/loss sets. Returns
    /// `(week, gains, losses)` sorted by week (stable, so equal weeks keep
    /// plan order). Records `faults.injected.bgp_flap` per flap.
    pub fn bgp_events(&self, topo: &Topology) -> Vec<(u32, Vec<EdgeId>, Vec<EdgeId>)> {
        use rand::seq::SliceRandom;
        let mut out = Vec::with_capacity(self.plan.bgp_flaps.len());
        for (i, f) in self.plan.bgp_flaps.iter().enumerate() {
            let mut rng = derive_rng(self.seed, &format!("fault:bgpflap:{i}"));
            let mut gain_candidates: Vec<EdgeId> = topo
                .edges()
                .iter()
                .filter(|e| {
                    e.v4 && !e.v6
                        && topo.node(e.a).is_dual_stack()
                        && topo.node(e.b).is_dual_stack()
                })
                .map(|e| e.id)
                .collect();
            let mut loss_candidates: Vec<EdgeId> = topo
                .edges()
                .iter()
                .filter(|e| e.v6 && e.v4 && e.tunnel.is_none())
                .map(|e| e.id)
                .collect();
            gain_candidates.shuffle(&mut rng);
            loss_candidates.shuffle(&mut rng);
            let n_gain = (gain_candidates.len() as f64 * f.gain_frac).round() as usize;
            let n_loss = (loss_candidates.len() as f64 * f.loss_frac).round() as usize;
            let gains: Vec<EdgeId> = gain_candidates.into_iter().take(n_gain).collect();
            let losses: Vec<EdgeId> = loss_candidates.into_iter().take(n_loss).collect();
            record_injection("faults.injected.bgp_flap");
            out.push((f.week, gains, losses));
        }
        out.sort_by_key(|(week, _, _)| *week);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::{
        DnsDisruption, HttpDisruption, LinkFlap, LossBurst, VantageOutage, XlatOutage,
    };

    fn plan_with_dns(prob: f64) -> FaultPlan {
        let mut p = FaultPlan::default();
        p.dns_faults.push(DnsDisruption {
            kind: DnsFaultKind::ServFail,
            prob,
            from_week: 0,
            weeks: 10,
        });
        p
    }

    #[test]
    fn dns_decisions_are_reproducible_and_windowed() {
        let inj = FaultInjector::new(plan_with_dns(0.5), 7);
        let first = inj.dns_fault("Penn", 3, "A", 2, 0, 0);
        for _ in 0..3 {
            assert_eq!(inj.dns_fault("Penn", 3, "A", 2, 0, 0), first, "same key, same answer");
        }
        assert_eq!(inj.dns_fault("Penn", 3, "A", 10, 0, 0), None, "outside the window");
    }

    #[test]
    fn zero_probability_never_fires_and_certainty_always_does() {
        let never = FaultInjector::new(plan_with_dns(0.0), 7);
        let always = FaultInjector::new(plan_with_dns(1.0), 7);
        for site in 0..50 {
            assert_eq!(never.dns_fault("Penn", site, "AAAA", 1, 0, 0), None);
            assert_eq!(
                always.dns_fault("Penn", site, "AAAA", 1, 0, 0),
                Some(DnsFaultKind::ServFail)
            );
        }
    }

    #[test]
    fn distinct_attempts_draw_independently() {
        let inj = FaultInjector::new(plan_with_dns(0.5), 42);
        let hits: Vec<bool> =
            (0..64).map(|a| inj.dns_fault("Penn", 1, "A", 0, 0, a).is_some()).collect();
        assert!(
            hits.iter().any(|h| *h) && hits.iter().any(|h| !*h),
            "attempts must vary: {hits:?}"
        );
    }

    #[test]
    fn fault_streams_are_vantage_keyed_not_call_ordered() {
        // Each decision is a pure function of (seed, vantage, site, week,
        // salt, attempt) — never of how many draws other vantages made
        // before it. This is what lets campaigns race across threads and
        // still inject the exact same faults.
        let inj = FaultInjector::new(plan_with_dns(0.5), 99);
        let penn_alone: Vec<Option<DnsFaultKind>> =
            (0..40).map(|site| inj.dns_fault("Penn", site, "A", 1, 0, 0)).collect();
        // Replay Penn's queries interleaved with heavy traffic from the
        // other vantages, in a different order.
        let mut penn_interleaved = Vec::new();
        for site in (0..40).rev() {
            for other in ["Comcast", "LU", "UPCB", "HE", "FreeBSD"] {
                let _ = inj.dns_fault(other, site, "A", 1, 0, 0);
                let _ = inj.dns_fault(other, site, "AAAA", 1, 0, 1);
            }
            penn_interleaved.push(inj.dns_fault("Penn", site, "A", 1, 0, 0));
        }
        penn_interleaved.reverse();
        assert_eq!(penn_alone, penn_interleaved, "Penn's stream moved with scheduling");
        // ...and the vantage really is part of the key: two vantages do
        // not share one fault stream.
        let comcast: Vec<Option<DnsFaultKind>> =
            (0..40).map(|site| inj.dns_fault("Comcast", site, "A", 1, 0, 0)).collect();
        assert_ne!(penn_alone, comcast, "distinct vantages drew identical streams");
    }

    #[test]
    fn http_fault_carries_stall_duration() {
        let mut p = FaultPlan::default();
        p.http_faults.push(HttpDisruption {
            kind: HttpFaultKind::Stall,
            prob: 1.0,
            stall_ms: 321.0,
            from_week: 0,
            weeks: 4,
        });
        let inj = FaultInjector::new(p, 1);
        assert_eq!(
            inj.http_fault("Penn", 9, Family::V6, "dl", 1, 0, 0),
            Some((HttpFaultKind::Stall, 321.0))
        );
        assert_eq!(inj.http_fault("Penn", 9, Family::V6, "dl", 5, 0, 0), None);
    }

    #[test]
    fn link_impact_stable_within_window_and_family_scoped() {
        let mut p = FaultPlan::default();
        p.link_flaps.push(LinkFlap { family: Family::V6, from_week: 2, weeks: 3, edge_frac: 0.5 });
        let inj = FaultInjector::new(p, 11);
        let edges: Vec<EdgeId> = (0..20).map(EdgeId).collect();
        let at3 = inj.link_impact(3, Family::V6, &edges);
        assert_eq!(at3, inj.link_impact(4, Family::V6, &edges), "stable across the window");
        assert!(inj.link_impact(3, Family::V4, &edges).is_clear(), "other family untouched");
        assert!(inj.link_impact(0, Family::V6, &edges).is_clear(), "outside the window");
    }

    #[test]
    fn loss_bursts_compose() {
        let mut p = FaultPlan::default();
        for _ in 0..2 {
            p.loss_bursts.push(LossBurst {
                family: Family::V4,
                from_week: 0,
                weeks: 1,
                edge_frac: 1.0,
                extra_loss: 0.1,
            });
        }
        let inj = FaultInjector::new(p, 5);
        let impact = inj.link_impact(0, Family::V4, &[EdgeId(0)]);
        assert!(!impact.down);
        let expect = 1.0 - 0.9f64 * 0.9;
        assert!((impact.extra_loss - expect).abs() < 1e-12, "got {}", impact.extra_loss);
    }

    #[test]
    fn xlat_outage_is_stable_per_gateway_and_recovers() {
        let mut p = FaultPlan::default();
        p.xlat_outages.push(XlatOutage { gateway_frac: 0.5, from_week: 4, weeks: 2 });
        let inj = FaultInjector::new(p, 21);
        let down4: Vec<bool> = (0..32).map(|g| inj.xlat_out(g, 4)).collect();
        let down5: Vec<bool> = (0..32).map(|g| inj.xlat_out(g, 5)).collect();
        assert_eq!(down4, down5, "membership stable across the window");
        assert!(down4.iter().any(|d| *d) && down4.iter().any(|d| !*d), "half-fraction splits");
        assert!((0..32).all(|g| !inj.xlat_out(g, 3)), "before the window");
        assert!((0..32).all(|g| !inj.xlat_out(g, 6)), "scheduled recovery");
        // certainty and never
        let mut all = FaultPlan::default();
        all.xlat_outages.push(XlatOutage { gateway_frac: 1.0, from_week: 0, weeks: 1 });
        assert!(FaultInjector::new(all, 1).xlat_out(7, 0));
        assert!(!FaultInjector::new(FaultPlan::default(), 1).xlat_out(7, 0));
    }

    #[test]
    fn outage_windows() {
        let mut p = FaultPlan::default();
        p.vantage_outages.push(VantageOutage { vantage: "Penn".into(), from_week: 4, weeks: 2 });
        let inj = FaultInjector::new(p, 0);
        assert!(!inj.vantage_out("Penn", 3));
        assert!(inj.vantage_out("Penn", 4));
        assert!(inj.vantage_out("Penn", 5));
        assert!(!inj.vantage_out("Penn", 6), "scheduled recovery");
        assert!(!inj.vantage_out("Comcast", 4), "other vantages unaffected");
    }
}
