//! The serde-able description of everything that goes wrong.

use crate::clock::RetryPolicy;
use serde::{Deserialize, Serialize};

/// What a disrupted DNS exchange looks like from the stub resolver.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DnsFaultKind {
    /// The authority answers SERVFAIL.
    ServFail,
    /// The query times out entirely.
    Timeout,
    /// The response arrives torn and fails to parse.
    Truncated,
}

/// What a disrupted HTTP exchange looks like from the monitor.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum HttpFaultKind {
    /// The server stalls before responding (extra think time).
    Stall,
    /// The connection is reset mid-exchange.
    Reset,
    /// The response is truncated before the header terminator.
    Truncate,
}

/// A window of weeks during which some edges of one family are down.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LinkFlap {
    /// Family whose forwarding is affected.
    pub family: ipv6web_topology::Family,
    /// First affected week.
    pub from_week: u32,
    /// Window length, weeks (the link recovers afterwards).
    pub weeks: u32,
    /// Fraction of edges (sampled per edge, stable for the window) down.
    pub edge_frac: f64,
}

/// A window of weeks during which some edges carry extra loss.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LossBurst {
    /// Family whose paths are affected.
    pub family: ipv6web_topology::Family,
    /// First affected week.
    pub from_week: u32,
    /// Window length, weeks.
    pub weeks: u32,
    /// Fraction of edges affected (sampled per edge, stable for the
    /// window).
    pub edge_frac: f64,
    /// Extra loss probability composed onto each affected edge.
    pub extra_loss: f64,
}

/// A BGP session flap: at `week`, a fraction of eligible edges gains or
/// loses IPv6, feeding an extra route-change epoch on top of the
/// scenario's scheduled one.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BgpFlap {
    /// Week the new routing epoch takes effect.
    pub week: u32,
    /// Fraction of eligible v4-only edges that start carrying IPv6.
    pub gain_frac: f64,
    /// Fraction of eligible native v6 edges that stop.
    pub loss_frac: f64,
}

/// A window of per-query DNS disruption.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DnsDisruption {
    /// Failure mode.
    pub kind: DnsFaultKind,
    /// Per-query injection probability.
    pub prob: f64,
    /// First affected week.
    pub from_week: u32,
    /// Window length, weeks.
    pub weeks: u32,
}

/// A window of per-exchange HTTP disruption.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct HttpDisruption {
    /// Failure mode.
    pub kind: HttpFaultKind,
    /// Per-exchange injection probability.
    pub prob: f64,
    /// Extra server think time for [`HttpFaultKind::Stall`], ms (ignored
    /// by the other kinds).
    pub stall_ms: f64,
    /// First affected week.
    pub from_week: u32,
    /// Window length, weeks.
    pub weeks: u32,
}

/// A whole-vantage outage with scheduled recovery: the monitor is dark for
/// the window and resumes afterwards.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct VantageOutage {
    /// Vantage point name (must match a Table 1 name to have any effect).
    pub vantage: String,
    /// First dark week.
    pub from_week: u32,
    /// Outage length, weeks.
    pub weeks: u32,
}

/// A window of weeks during which a fraction of NAT64 gateways is down:
/// translated paths through a dead gateway fail over to the next gateway
/// in the vantage's preference order (or fail outright if none is left),
/// and recover when the window closes. Has no effect on scenarios without
/// a translation plane.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct XlatOutage {
    /// Fraction of gateways down (sampled per gateway, stable for the
    /// window).
    pub gateway_frac: f64,
    /// First affected week.
    pub from_week: u32,
    /// Window length, weeks (gateways recover afterwards).
    pub weeks: u32,
}

/// Everything that goes wrong in one campaign, plus how probes retry
/// through it. An empty (default) plan injects nothing and leaves every
/// output byte-identical to a run without fault support.
///
/// Deserialization is hand-written (the vendored serde derive has no
/// attribute support): every field may be omitted and defaults to empty /
/// [`RetryPolicy::paper`], so `{}` is a valid no-op plan file.
#[derive(Debug, Clone, PartialEq, Default, Serialize)]
pub struct FaultPlan {
    /// Retry/backoff policy used by fault-aware consumers.
    pub retry: RetryPolicy,
    /// Link-down windows.
    pub link_flaps: Vec<LinkFlap>,
    /// Elevated-loss windows.
    pub loss_bursts: Vec<LossBurst>,
    /// BGP session flaps (extra route-change epochs).
    pub bgp_flaps: Vec<BgpFlap>,
    /// DNS disruption windows.
    pub dns_faults: Vec<DnsDisruption>,
    /// HTTP disruption windows.
    pub http_faults: Vec<HttpDisruption>,
    /// Whole-vantage outages.
    pub vantage_outages: Vec<VantageOutage>,
    /// NAT64 gateway outages.
    pub xlat_outages: Vec<XlatOutage>,
}

impl Deserialize for FaultPlan {
    fn from_value(v: &serde::Value) -> Result<Self, serde::DeError> {
        fn list<T: Deserialize>(v: &serde::Value, name: &str) -> Result<Vec<T>, serde::DeError> {
            match v.get_field(name) {
                Some(x) => Deserialize::from_value(x),
                None => Ok(Vec::new()),
            }
        }
        if v.as_obj().is_none() {
            return Err(serde::DeError::new("expected object for FaultPlan"));
        }
        Ok(FaultPlan {
            retry: match v.get_field("retry") {
                Some(x) => Deserialize::from_value(x)?,
                None => RetryPolicy::paper(),
            },
            link_flaps: list(v, "link_flaps")?,
            loss_bursts: list(v, "loss_bursts")?,
            bgp_flaps: list(v, "bgp_flaps")?,
            dns_faults: list(v, "dns_faults")?,
            http_faults: list(v, "http_faults")?,
            vantage_outages: list(v, "vantage_outages")?,
            xlat_outages: list(v, "xlat_outages")?,
        })
    }

    fn missing_field(_name: &str) -> Result<Self, serde::DeError> {
        // scenarios written before fault injection existed carry no plan
        Ok(FaultPlan::default())
    }
}

fn window_ok(from_week: u32, weeks: u32, total_weeks: u32, what: &str) -> Result<(), String> {
    if weeks == 0 {
        return Err(format!("{what}: window must last at least one week"));
    }
    if from_week >= total_weeks {
        return Err(format!("{what}: from_week {from_week} beyond campaign ({total_weeks} weeks)"));
    }
    if from_week + weeks > total_weeks {
        return Err(format!("{what}: window [{from_week}, {}) beyond campaign", from_week + weeks));
    }
    Ok(())
}

fn frac_ok(v: f64, what: &str) -> Result<(), String> {
    if !v.is_finite() || !(0.0..=1.0).contains(&v) {
        return Err(format!("{what} must be in [0, 1], got {v}"));
    }
    Ok(())
}

impl FaultPlan {
    /// True when the plan injects nothing (the retry policy is ignored —
    /// with no faults there is nothing to retry).
    pub fn is_empty(&self) -> bool {
        self.link_flaps.is_empty()
            && self.loss_bursts.is_empty()
            && self.bgp_flaps.is_empty()
            && self.dns_faults.is_empty()
            && self.http_faults.is_empty()
            && self.vantage_outages.is_empty()
            && self.xlat_outages.is_empty()
    }

    /// Checks every window and probability against a campaign of
    /// `total_weeks` weeks.
    pub fn validate(&self, total_weeks: u32) -> Result<(), String> {
        self.retry.validate()?;
        for (i, f) in self.link_flaps.iter().enumerate() {
            window_ok(f.from_week, f.weeks, total_weeks, &format!("link_flaps[{i}]"))?;
            frac_ok(f.edge_frac, &format!("link_flaps[{i}].edge_frac"))?;
        }
        for (i, f) in self.loss_bursts.iter().enumerate() {
            window_ok(f.from_week, f.weeks, total_weeks, &format!("loss_bursts[{i}]"))?;
            frac_ok(f.edge_frac, &format!("loss_bursts[{i}].edge_frac"))?;
            frac_ok(f.extra_loss, &format!("loss_bursts[{i}].extra_loss"))?;
            if f.extra_loss >= 1.0 {
                return Err(format!("loss_bursts[{i}].extra_loss must stay below 1.0"));
            }
        }
        for (i, f) in self.bgp_flaps.iter().enumerate() {
            if f.week == 0 || f.week >= total_weeks {
                return Err(format!("bgp_flaps[{i}]: epoch week must fall inside the campaign"));
            }
            frac_ok(f.gain_frac, &format!("bgp_flaps[{i}].gain_frac"))?;
            frac_ok(f.loss_frac, &format!("bgp_flaps[{i}].loss_frac"))?;
        }
        for (i, f) in self.dns_faults.iter().enumerate() {
            window_ok(f.from_week, f.weeks, total_weeks, &format!("dns_faults[{i}]"))?;
            frac_ok(f.prob, &format!("dns_faults[{i}].prob"))?;
        }
        for (i, f) in self.http_faults.iter().enumerate() {
            window_ok(f.from_week, f.weeks, total_weeks, &format!("http_faults[{i}]"))?;
            frac_ok(f.prob, &format!("http_faults[{i}].prob"))?;
            if !f.stall_ms.is_finite() || f.stall_ms < 0.0 {
                return Err(format!("http_faults[{i}].stall_ms must be finite and non-negative"));
            }
        }
        for (i, f) in self.vantage_outages.iter().enumerate() {
            window_ok(f.from_week, f.weeks, total_weeks, &format!("vantage_outages[{i}]"))?;
            if f.vantage.is_empty() {
                return Err(format!("vantage_outages[{i}]: vantage name must not be empty"));
            }
        }
        for (i, f) in self.xlat_outages.iter().enumerate() {
            window_ok(f.from_week, f.weeks, total_weeks, &format!("xlat_outages[{i}]"))?;
            frac_ok(f.gateway_frac, &format!("xlat_outages[{i}].gateway_frac"))?;
        }
        Ok(())
    }

    /// The `repro faults` demo: a bit of everything, scheduled relative to
    /// the campaign length. Valid for any campaign of at least 6 weeks.
    pub fn demo(total_weeks: u32) -> FaultPlan {
        let mid = total_weeks / 2;
        let third = total_weeks / 3;
        FaultPlan {
            retry: RetryPolicy::paper(),
            link_flaps: vec![LinkFlap {
                family: ipv6web_topology::Family::V6,
                from_week: third,
                weeks: 2,
                edge_frac: 0.01,
            }],
            loss_bursts: vec![LossBurst {
                family: ipv6web_topology::Family::V6,
                from_week: mid,
                weeks: 3.min(total_weeks - mid),
                edge_frac: 0.05,
                extra_loss: 0.02,
            }],
            bgp_flaps: vec![BgpFlap {
                week: (2 * total_weeks / 3).max(1),
                gain_frac: 0.01,
                loss_frac: 0.005,
            }],
            dns_faults: vec![
                DnsDisruption {
                    kind: DnsFaultKind::ServFail,
                    prob: 0.01,
                    from_week: 0,
                    weeks: total_weeks,
                },
                DnsDisruption {
                    kind: DnsFaultKind::Timeout,
                    prob: 0.005,
                    from_week: mid,
                    weeks: 2,
                },
            ],
            http_faults: vec![
                HttpDisruption {
                    kind: HttpFaultKind::Stall,
                    prob: 0.01,
                    stall_ms: 750.0,
                    from_week: 0,
                    weeks: total_weeks,
                },
                HttpDisruption {
                    kind: HttpFaultKind::Reset,
                    prob: 0.005,
                    stall_ms: 0.0,
                    from_week: 0,
                    weeks: total_weeks,
                },
                HttpDisruption {
                    kind: HttpFaultKind::Truncate,
                    prob: 0.003,
                    stall_ms: 0.0,
                    from_week: third,
                    weeks: 2,
                },
            ],
            // Penn monitors from week 0 at every scale, so the outage
            // window always overlaps its live campaign
            vantage_outages: vec![VantageOutage {
                vantage: "Penn".into(),
                from_week: mid,
                weeks: 2.min(total_weeks - mid),
            }],
            // gateway outages only bite nat64-tier scenarios; the demo plan
            // runs on the classic dual-stack tiers
            xlat_outages: vec![],
        }
    }

    /// Week windows `[start, end]` (end inclusive, the recovery week
    /// included) during which injected faults can shift measured levels —
    /// what the sanitizer uses to attribute Table 3 transitions to the
    /// plan. Per-probe DNS/HTTP noise does not shift levels and is
    /// excluded.
    pub fn disruption_windows(&self) -> Vec<(u32, u32)> {
        let mut out: Vec<(u32, u32)> = Vec::new();
        for f in &self.link_flaps {
            out.push((f.from_week, f.from_week + f.weeks));
        }
        for f in &self.loss_bursts {
            out.push((f.from_week, f.from_week + f.weeks));
        }
        for f in &self.bgp_flaps {
            out.push((f.week, f.week + 1));
        }
        for f in &self.vantage_outages {
            out.push((f.from_week, f.from_week + f.weeks));
        }
        for f in &self.xlat_outages {
            out.push((f.from_week, f.from_week + f.weeks));
        }
        out.sort_unstable();
        out.dedup();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_plan_is_empty_and_valid() {
        let p = FaultPlan::default();
        assert!(p.is_empty());
        assert_eq!(p.validate(10), Ok(()));
        assert!(p.disruption_windows().is_empty());
    }

    #[test]
    fn demo_plan_valid_at_both_scales() {
        for weeks in [12, 26, 52] {
            let p = FaultPlan::demo(weeks);
            assert!(!p.is_empty());
            assert_eq!(p.validate(weeks), Ok(()), "{weeks} weeks");
            assert!(!p.disruption_windows().is_empty());
        }
    }

    #[test]
    fn windows_validated_against_campaign() {
        let mut p = FaultPlan::default();
        p.dns_faults.push(DnsDisruption {
            kind: DnsFaultKind::ServFail,
            prob: 0.5,
            from_week: 8,
            weeks: 5,
        });
        assert!(p.validate(12).is_err(), "window spills past the campaign");
        assert!(p.validate(13).is_ok());
        p.dns_faults[0].prob = 1.5;
        assert!(p.validate(13).is_err(), "probability out of range");
    }

    #[test]
    fn zero_length_window_rejected() {
        let mut p = FaultPlan::default();
        p.vantage_outages.push(VantageOutage { vantage: "Penn".into(), from_week: 2, weeks: 0 });
        assert!(p.validate(10).is_err());
    }

    #[test]
    fn empty_json_object_deserializes_to_empty_plan() {
        let p: FaultPlan = serde_json::from_str("{}").unwrap();
        assert!(p.is_empty());
        assert_eq!(p.retry, RetryPolicy::paper());
    }

    #[test]
    fn serde_roundtrip() {
        let mut p = FaultPlan::demo(26);
        p.xlat_outages.push(XlatOutage { gateway_frac: 0.5, from_week: 3, weeks: 2 });
        let json = serde_json::to_string(&p).unwrap();
        let back: FaultPlan = serde_json::from_str(&json).unwrap();
        assert_eq!(p, back);
    }

    #[test]
    fn xlat_outage_validated_like_any_window() {
        let mut p = FaultPlan::default();
        p.xlat_outages.push(XlatOutage { gateway_frac: 0.5, from_week: 8, weeks: 5 });
        assert!(!p.is_empty());
        assert!(p.validate(12).is_err(), "window spills past the campaign");
        assert!(p.validate(13).is_ok());
        assert_eq!(p.disruption_windows(), vec![(8, 13)]);
        p.xlat_outages[0].gateway_frac = 1.5;
        assert!(p.validate(13).is_err(), "fraction out of range");
        // a pre-xlat plan file still parses, with no gateway outages
        let old: FaultPlan = serde_json::from_str("{\"link_flaps\": []}").unwrap();
        assert!(old.xlat_outages.is_empty());
    }

    #[test]
    fn disruption_windows_cover_level_shifting_faults() {
        let p = FaultPlan::demo(26);
        let w = p.disruption_windows();
        assert!(w.contains(&(13, 16)), "loss burst window, got {w:?}");
        assert!(w.contains(&(17, 18)), "bgp flap window, got {w:?}");
    }
}
