//! Deterministic fault injection for the measurement substrate.
//!
//! Real campaigns are messy: DNS servers fail, links flap, BGP sessions
//! reset mid-campaign, servers stall or tear connections down, and whole
//! vantage points go dark for weeks. The paper's Section 4 sanitization
//! exists *because* of that mess — this crate makes the mess reproducible
//! so the robustness of the pipeline can be tested instead of assumed.
//!
//! Three pieces:
//!
//! * [`FaultPlan`] — a serde-able description of *what* goes wrong and
//!   *when* (per-family link flaps and loss bursts, BGP session flaps that
//!   feed extra route-change epochs, DNS SERVFAIL/timeout/truncation,
//!   per-server HTTP stalls and resets, whole-vantage outages), plus the
//!   [`RetryPolicy`] consumers use to probe through it.
//! * [`FaultClock`] — simulated per-probe time, so retries and backoff
//!   consume a budget without ever touching the wall clock.
//! * [`FaultInjector`] — the pure decision function. Every decision is
//!   keyed on `(seed, entity, week, round, attempt)` through
//!   [`ipv6web_stats::derive_rng`] label streams, never on scheduling, so
//!   a plan replays bit-identically at any thread count.
//!
//! Every injected fault is counted under exactly one
//! `faults.injected.<kind>` obs counter paired with `faults.injected_total`
//! (see [`record_injection`]), which is what the accounting proptests in
//! `tests/faults.rs` verify.

pub mod clock;
pub mod inject;
pub mod plan;

pub use clock::{FaultClock, RetryPolicy};
pub use inject::{FaultInjector, LinkImpact};
pub use plan::{
    BgpFlap, DnsDisruption, DnsFaultKind, FaultPlan, HttpDisruption, HttpFaultKind, LinkFlap,
    LossBurst, VantageOutage, XlatOutage,
};

/// Records one injected fault: increments the given `faults.injected.*`
/// counter and the `faults.injected_total` roll-up together, so the sum of
/// the per-kind counters always equals the total.
pub fn record_injection(kind: &'static str) {
    ipv6web_obs::inc(kind);
    ipv6web_obs::inc("faults.injected_total");
}
