//! Ranked site lists and the 2010–2011 IPv6 adoption timeline.
//!
//! The study monitors "the top 1 Million web sites list maintained by
//! Alexa", re-fetched before each round; sites never seen before join the
//! monitored set permanently (Section 3). Churn alone grew the monitored
//! set past 2 million sites within a year. Penn additionally imported a
//! multi-million-site tail from its DNS cache (Fig 3b's "5M sites" series).
//!
//! * [`list`] — list snapshots with churn and the accumulate-only
//!   monitored set;
//! * [`timeline`] — the adoption calendar with the two events visible as
//!   jumps in Fig 1: the IANA IPv4 pool depletion (2011-02-03) and World
//!   IPv6 Day (2011-06-08).

pub mod list;
pub mod timeline;

pub use list::{MonitoredSet, TopList};
pub use timeline::{AdoptionTimeline, IANA_DEPLETION_WEEK, WORLD_IPV6_DAY_WEEK};
