//! The campaign calendar and IPv6 adoption curve.
//!
//! Week 0 of the simulated campaign is 2010-08-12; weekly rounds follow.
//! Two events shape the adoption curve, exactly as in Fig 1:
//!
//! * week 25 — 2011-02-03, IANA's IPv4 free pool depletion announcement;
//! * week 43 — 2011-06-08, World IPv6 Day.
//!
//! Between events adoption grows slowly; at each event a cohort of sites
//! publishes AAAA records within a week or two.

use serde::{Deserialize, Serialize};

/// Campaign week of the IANA depletion announcement (2011-02-03).
pub const IANA_DEPLETION_WEEK: u32 = 25;

/// Campaign week of World IPv6 Day (2011-06-08).
pub const WORLD_IPV6_DAY_WEEK: u32 = 43;

/// Default campaign length in weeks (2010-08-12 … 2011-08-11).
pub const DEFAULT_CAMPAIGN_WEEKS: u32 = 52;

/// The adoption timeline: maps campaign weeks to calendar labels and
/// produces the cumulative AAAA-publication curve used by the population
/// generator.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AdoptionTimeline {
    /// Total campaign length, weeks.
    pub total_weeks: u32,
    /// Week of the IANA depletion jump.
    pub iana_week: u32,
    /// Week of the World IPv6 Day jump.
    pub ipv6_day_week: u32,
    /// Fraction of eventually-dual sites already published at week 0.
    pub base_fraction: f64,
    /// Fraction of eventually-dual sites publishing in the IANA jump.
    pub iana_jump: f64,
    /// Fraction publishing in the World IPv6 Day jump.
    pub ipv6_day_jump: f64,
}

impl AdoptionTimeline {
    /// The paper's timeline (Fig 1 shape).
    pub fn paper() -> Self {
        AdoptionTimeline {
            total_weeks: DEFAULT_CAMPAIGN_WEEKS,
            iana_week: IANA_DEPLETION_WEEK,
            ipv6_day_week: WORLD_IPV6_DAY_WEEK,
            base_fraction: 0.18,
            iana_jump: 0.12,
            ipv6_day_jump: 0.35,
        }
    }

    /// Cumulative fraction of eventually-dual sites with AAAA published by
    /// the end of `week`: a slow linear ramp with two step jumps, reaching
    /// 1.0 at the campaign end.
    pub fn cumulative(&self, week: u32) -> f64 {
        let w = week.min(self.total_weeks) as f64;
        let total = self.total_weeks as f64;
        // linear background absorbing whatever the jumps don't cover
        let background = 1.0 - self.base_fraction - self.iana_jump - self.ipv6_day_jump;
        let mut cum = self.base_fraction + background * (w / total);
        if week >= self.iana_week {
            cum += self.iana_jump;
        }
        if week >= self.ipv6_day_week {
            cum += self.ipv6_day_jump;
        }
        cum.min(1.0)
    }

    /// The curve as `(week, cumulative)` pairs, suitable for the population
    /// generator's sampler.
    pub fn curve(&self) -> Vec<(u32, f64)> {
        (0..=self.total_weeks).map(|w| (w, self.cumulative(w))).collect()
    }

    /// Calendar label of a campaign week, `YY/MM/DD` like Fig 1's axis.
    /// Week 0 is 2010-08-12; the Gregorian arithmetic handles the year
    /// boundary and 2012 would-be leap weeks (the campaign ends before).
    pub fn date_label(&self, week: u32) -> String {
        // days since 2010-08-12
        let days = week as u64 * 7;
        let (mut y, mut m, mut d) = (2010u64, 8u64, 12u64);
        let mut left = days;
        let dim = |y: u64, m: u64| -> u64 {
            match m {
                1 | 3 | 5 | 7 | 8 | 10 | 12 => 31,
                4 | 6 | 9 | 11 => 30,
                2 if (y.is_multiple_of(4) && !y.is_multiple_of(100)) || y.is_multiple_of(400) => 29,
                _ => 28,
            }
        };
        while left > 0 {
            let step = left.min(dim(y, m) - d + 1);
            d += step;
            left -= step;
            if d > dim(y, m) {
                d = 1;
                m += 1;
                if m > 12 {
                    m = 1;
                    y += 1;
                }
            }
        }
        format!("{:02}/{:02}/{:02}", y % 100, m, d)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cumulative_is_monotone_and_reaches_one() {
        let t = AdoptionTimeline::paper();
        let mut prev = 0.0;
        for w in 0..=t.total_weeks {
            let c = t.cumulative(w);
            assert!(c >= prev - 1e-12, "non-monotone at week {w}");
            assert!((0.0..=1.0).contains(&c));
            prev = c;
        }
        assert!((t.cumulative(t.total_weeks) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn jumps_visible_at_events() {
        let t = AdoptionTimeline::paper();
        let before_iana = t.cumulative(t.iana_week - 1);
        let at_iana = t.cumulative(t.iana_week);
        assert!(at_iana - before_iana > 0.10, "IANA jump must be a step");
        let before_day = t.cumulative(t.ipv6_day_week - 1);
        let at_day = t.cumulative(t.ipv6_day_week);
        assert!(at_day - before_day > 0.30, "IPv6 Day jump must be the big one");
        // between events growth is slow
        let mid_growth = t.cumulative(t.iana_week + 5) - t.cumulative(t.iana_week + 1);
        assert!(mid_growth < 0.05);
    }

    #[test]
    fn cumulative_saturates_beyond_end() {
        let t = AdoptionTimeline::paper();
        assert_eq!(t.cumulative(10_000), 1.0);
    }

    #[test]
    fn curve_matches_pointwise() {
        let t = AdoptionTimeline::paper();
        let c = t.curve();
        assert_eq!(c.len(), t.total_weeks as usize + 1);
        for (w, v) in c {
            assert_eq!(v, t.cumulative(w));
        }
    }

    #[test]
    fn date_labels_hit_known_events() {
        let t = AdoptionTimeline::paper();
        assert_eq!(t.date_label(0), "10/08/12");
        // week 25 = 175 days after 2010-08-12 = 2011-02-03
        assert_eq!(t.date_label(IANA_DEPLETION_WEEK), "11/02/03");
        // week 43 = 301 days = 2011-06-09 (IPv6 day was June 8, rounds ran
        // through the event week)
        assert_eq!(t.date_label(WORLD_IPV6_DAY_WEEK), "11/06/09");
        assert_eq!(t.date_label(52), "11/08/11");
    }

    #[test]
    fn date_label_year_rollover() {
        let t = AdoptionTimeline::paper();
        // week 20 = 140 days after 2010-08-12 = 2010-12-30
        assert_eq!(t.date_label(20), "10/12/30");
        assert_eq!(t.date_label(21), "11/01/06");
    }
}
