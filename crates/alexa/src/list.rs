//! Ranked list snapshots and the accumulate-only monitored set.

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// A ranked site list with churn: every site has a rank and the week it
/// first enters the list. Site identities are `u32` indices into whatever
//  population the caller keeps (the `ipv6web-web` crate's `SiteId`s).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TopList {
    entries: Vec<ListEntry>,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
struct ListEntry {
    id: u32,
    rank: u32,
    first_seen_week: u32,
}

impl TopList {
    /// Builds a list from `(id, rank, first_seen_week)` triples.
    ///
    /// # Panics
    /// Panics on duplicate ids.
    pub fn from_parts(parts: impl IntoIterator<Item = (u32, u32, u32)>) -> Self {
        let mut seen = std::collections::HashSet::new();
        let entries: Vec<ListEntry> = parts
            .into_iter()
            .map(|(id, rank, first_seen_week)| {
                assert!(seen.insert(id), "duplicate site id {id}");
                ListEntry { id, rank, first_seen_week }
            })
            .collect();
        TopList { entries }
    }

    /// Total sites ever in the list.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when the list is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Ids present in the list snapshot of `week`, best rank first.
    pub fn snapshot(&self, week: u32) -> Vec<u32> {
        let mut present: Vec<&ListEntry> =
            self.entries.iter().filter(|e| e.first_seen_week <= week).collect();
        present.sort_by_key(|e| (e.rank, e.id));
        present.into_iter().map(|e| e.id).collect()
    }

    /// Ids in the top-`k` of the `week` snapshot (Fig 3a's rank buckets).
    pub fn top_k(&self, week: u32, k: usize) -> Vec<u32> {
        let mut s = self.snapshot(week);
        s.truncate(k);
        s
    }

    /// Rank of a site, if it is in the list at all.
    pub fn rank_of(&self, id: u32) -> Option<u32> {
        self.entries.iter().find(|e| e.id == id).map(|e| e.rank)
    }
}

/// The accumulate-only monitored set: "new sites … are added to the
/// monitoring list and tracked from this point onward" (Section 3).
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct MonitoredSet {
    added_week: BTreeMap<u32, u32>,
}

impl MonitoredSet {
    /// Empty set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Ingests a round's list snapshot (plus any external inputs): ids not
    /// seen before are added with `week` as their addition week. Returns
    /// how many were new.
    pub fn ingest(&mut self, week: u32, ids: impl IntoIterator<Item = u32>) -> usize {
        let mut added = 0;
        for id in ids {
            if let std::collections::btree_map::Entry::Vacant(e) = self.added_week.entry(id) {
                e.insert(week);
                added += 1;
            }
        }
        ipv6web_obs::add("alexa.sites_ingested", added as u64);
        added
    }

    /// All monitored ids (ascending).
    pub fn members(&self) -> impl Iterator<Item = u32> + '_ {
        self.added_week.keys().copied()
    }

    /// Week a site was added, if monitored.
    pub fn added_week(&self, id: u32) -> Option<u32> {
        self.added_week.get(&id).copied()
    }

    /// Number of monitored sites.
    pub fn len(&self) -> usize {
        self.added_week.len()
    }

    /// True when nothing is monitored yet.
    pub fn is_empty(&self) -> bool {
        self.added_week.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn list() -> TopList {
        TopList::from_parts([
            (0, 1, 0), // top site, present from start
            (1, 2, 0),
            (2, 3, 5), // churns in at week 5
            (3, 4, 0),
            (4, 5, 20), // churns in at week 20
        ])
    }

    #[test]
    fn snapshot_respects_first_seen() {
        let l = list();
        assert_eq!(l.snapshot(0), vec![0, 1, 3]);
        assert_eq!(l.snapshot(5), vec![0, 1, 2, 3]);
        assert_eq!(l.snapshot(30), vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn snapshot_ordered_by_rank() {
        let l = TopList::from_parts([(9, 3, 0), (7, 1, 0), (8, 2, 0)]);
        assert_eq!(l.snapshot(0), vec![7, 8, 9]);
    }

    #[test]
    fn top_k_truncates() {
        let l = list();
        assert_eq!(l.top_k(30, 2), vec![0, 1]);
        assert_eq!(l.top_k(30, 100).len(), 5);
    }

    #[test]
    fn rank_lookup() {
        let l = list();
        assert_eq!(l.rank_of(3), Some(4));
        assert_eq!(l.rank_of(99), None);
    }

    #[test]
    #[should_panic(expected = "duplicate")]
    fn duplicate_ids_panic() {
        TopList::from_parts([(1, 1, 0), (1, 2, 0)]);
    }

    #[test]
    fn monitored_set_accumulates() {
        let l = list();
        let mut m = MonitoredSet::new();
        assert_eq!(m.ingest(0, l.snapshot(0)), 3);
        assert_eq!(m.len(), 3);
        // week 5: one new site
        assert_eq!(m.ingest(5, l.snapshot(5)), 1);
        // re-ingesting adds nothing
        assert_eq!(m.ingest(6, l.snapshot(5)), 0);
        // sites never leave
        assert_eq!(m.ingest(7, vec![0]), 0);
        assert_eq!(m.len(), 4);
        assert_eq!(m.added_week(2), Some(5));
        assert_eq!(m.added_week(0), Some(0));
        assert_eq!(m.added_week(4), None);
    }

    #[test]
    fn external_inputs_join_the_set() {
        // Penn's DNS-cache tail: ids beyond the ranked list
        let mut m = MonitoredSet::new();
        m.ingest(0, list().snapshot(0));
        let before = m.len();
        m.ingest(3, vec![1000, 1001]);
        assert_eq!(m.len(), before + 2);
        assert_eq!(m.added_week(1000), Some(3));
    }

    #[test]
    fn members_sorted() {
        let mut m = MonitoredSet::new();
        m.ingest(0, vec![5, 1, 9]);
        assert_eq!(m.members().collect::<Vec<_>>(), vec![1, 5, 9]);
    }
}
