//! `repro` CLI regressions that need a real process boundary.

use std::process::Command;

fn repro() -> Command {
    Command::new(env!("CARGO_BIN_EXE_repro"))
}

#[test]
fn bad_checkpoint_dir_fails_fast_with_exit_2() {
    // A typo'd --checkpoint-dir parent used to surface only at the first
    // checkpoint write, after the whole world build and part of a
    // campaign. It must now fail up front, before any study work.
    let missing = std::env::temp_dir().join("ipv6web-no-such-parent").join("ckpt");
    assert!(!missing.parent().unwrap().exists(), "parent must not exist for this test");
    let start = std::time::Instant::now();
    let out = repro()
        .args(["all", "--checkpoint-dir", missing.to_str().unwrap()])
        .output()
        .expect("run repro");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert_eq!(out.status.code(), Some(2), "stderr: {stderr}");
    assert!(
        stderr.contains("cannot be created") && stderr.contains("does not exist"),
        "expected a readable checkpoint-dir message, got: {stderr}"
    );
    assert!(
        !stderr.contains("running study"),
        "validation must happen before the study starts: {stderr}"
    );
    // failing fast is the point: no world build, no campaign
    assert!(start.elapsed().as_secs() < 30, "took {:?}", start.elapsed());
}

#[test]
fn checkpoint_path_that_is_a_file_fails_fast() {
    let file = std::env::temp_dir().join(format!("ipv6web-ckpt-file-{}", std::process::id()));
    std::fs::write(&file, b"in the way").unwrap();
    let out = repro()
        .args(["all", "--checkpoint-dir", file.to_str().unwrap()])
        .output()
        .expect("run repro");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert_eq!(out.status.code(), Some(2), "stderr: {stderr}");
    assert!(stderr.contains("is not a directory"), "unexpected message: {stderr}");
    std::fs::remove_file(&file).ok();
}

#[test]
fn unknown_scale_still_exits_2() {
    let out = repro().args(["all", "--scale", "galactic"]).output().expect("run repro");
    assert_eq!(out.status.code(), Some(2));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("unknown scale"));
    // the error enumerates every accepted scale, nat64 and panel included
    for scale in ["quick", "paper", "faults", "internet", "internet-smoke", "nat64", "panel"] {
        assert!(stderr.contains(scale), "error must offer `{scale}`: {stderr}");
    }
}
