//! One Criterion bench per paper figure, plus a print-once of the series
//! so `cargo bench` output doubles as a sanity check of the shapes.

use criterion::{criterion_group, criterion_main, Criterion};
use ipv6web_analysis::figures::{fig1_series, fig3a_series, fig3b_series};
use ipv6web_bench::shared_quick_study;
use std::hint::black_box;

fn bench_figures(c: &mut Criterion) {
    let study = shared_quick_study();
    let w = &study.world;
    let penn_idx = w.vantages.iter().position(|v| v.name == "Penn").unwrap();
    let db = &study.dbs[penn_idx];
    let timeline = &w.scenario.timeline;
    let n_list = w.scenario.population.n_sites;
    let sites = &w.sites;
    let last_week = w.scenario.campaign.total_weeks - 1;
    let penn = study.analyses.iter().find(|a| a.vantage == "Penn").expect("penn analyzed");

    // print the series once so bench logs show the shape
    let r = &study.report;
    println!(
        "fig1: {:.2}% -> {:.2}%  fig3a: {:?}  fig3b: {:?}",
        r.fig1.first().map(|p| p.reachable_pct).unwrap_or(0.0),
        r.fig1.last().map(|p| p.reachable_pct).unwrap_or(0.0),
        r.fig3a,
        r.fig3b
    );

    let mut g = c.benchmark_group("figures");
    g.bench_function("fig1_reachability_timeline", |b| {
        b.iter(|| black_box(fig1_series(db, timeline, 0)))
    });
    g.bench_function("fig3a_rank_buckets", |b| {
        b.iter(|| {
            black_box(fig3a_series(
                db,
                |s| (s.index() < n_list).then(|| sites[s.index()].rank),
                last_week,
            ))
        })
    });
    g.bench_function("fig3b_top_vs_tail", |b| {
        b.iter(|| black_box(fig3b_series(&penn.kept, |s| s.index() < n_list)))
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_figures
}
criterion_main!(benches);
