//! Ablation benches for the design choices DESIGN.md calls out.
//!
//! Each ablation runs a tiny end-to-end study under a counterfactual
//! configuration and prints the headline numbers once, then benches the
//! pipeline so regressions in the heavy path show up in CI:
//!
//! * **peering parity** — the paper's recommendation: parity 1.0 should
//!   erase the DP class and its performance gap;
//! * **H1-fails counterfactual** — widespread IPv6 forwarding penalties
//!   must surface as "Bad" SP ASes (the study would have rejected H1);
//! * **no disturbances** — Table 3's ↑/↓/↗/↘ columns must empty out.

use criterion::{criterion_group, criterion_main, Criterion};
use ipv6web_analysis::{AsCategory, SiteClass};
use ipv6web_core::{run_study, Scenario};
use std::hint::black_box;

fn tiny(seed: u64) -> Scenario {
    let mut s = Scenario::quick(seed);
    s.population.n_sites = 700;
    s.tail_sites = 100;
    s.campaign.total_weeks = 14;
    s.timeline.total_weeks = 14;
    s.timeline.iana_week = 5;
    s.timeline.ipv6_day_week = 11;
    s.fig1_from_week = 2;
    s.route_change = Some((7, 0.03, 0.01));
    s.analysis.min_paired_samples = 5;
    s.campaign.workers = 8;
    s
}

fn dp_share(study: &ipv6web_core::StudyResult) -> f64 {
    let (mut sp, mut dp) = (0usize, 0usize);
    for a in &study.analyses {
        sp += a.count_of(SiteClass::Sp);
        dp += a.count_of(SiteClass::Dp);
    }
    if sp + dp == 0 {
        0.0
    } else {
        dp as f64 / (sp + dp) as f64
    }
}

fn bad_sp_groups(study: &ipv6web_core::StudyResult) -> usize {
    study
        .analyses
        .iter()
        .flat_map(|a| a.sp_groups.values())
        .filter(|g| g.category == AsCategory::Bad)
        .count()
}

fn ablation_peering_parity(c: &mut Criterion) {
    // print the sweep once: lambda interpolates the 2011 deployment toward
    // full parity (adoption + replication + tunnel retirement together)
    for lambda in [0.0, 0.5, 1.0] {
        let mut s = tiny(11);
        s.topology.dual = s.topology.dual.toward_parity(lambda);
        let study = run_study(&s).expect("valid scenario");
        println!(
            "ablation toward_parity lambda={lambda}: DP share {:.1}%, H2 {}",
            100.0 * dp_share(&study),
            if study.report.h2.holds { "holds" } else { "n/a (no DP left)" }
        );
    }
    let mut g = c.benchmark_group("ablation_peering_parity");
    g.sample_size(10);
    g.bench_function("study_low_parity", |b| {
        let mut s = tiny(11);
        s.topology.dual = s.topology.dual.with_peering_parity(0.1);
        b.iter(|| black_box(run_study(&s)))
    });
    g.finish();
}

fn ablation_forwarding_penalty(c: &mut Criterion) {
    for (label, prob, range) in [("h1-holds", 0.04, (0.55, 0.9)), ("h1-fails", 0.8, (0.03, 0.15))] {
        let mut s = tiny(13);
        s.topology.dual = s.topology.dual.with_forwarding_penalty(prob, range);
        let study = run_study(&s).expect("valid scenario");
        println!(
            "ablation forwarding_penalty={label}: bad SP groups {}, H1 {}",
            bad_sp_groups(&study),
            if study.report.h1.holds { "holds" } else { "REJECTED" }
        );
    }
    let mut g = c.benchmark_group("ablation_forwarding_penalty");
    g.sample_size(10);
    g.bench_function("study_h1_fails", |b| {
        let mut s = tiny(13);
        s.topology.dual = s.topology.dual.with_forwarding_penalty(0.8, (0.03, 0.15));
        b.iter(|| black_box(run_study(&s)))
    });
    g.finish();
}

fn ablation_disturbances(c: &mut Criterion) {
    let mut s = tiny(17);
    s.disturbances = ipv6web_monitor::DisturbanceConfig::none();
    let study = run_study(&s).expect("valid scenario");
    let transitions: usize = study
        .analyses
        .iter()
        .flat_map(|a| &a.removed)
        .filter(|r| {
            !matches!(r.cause, ipv6web_analysis::sanitize::RemovalCause::InsufficientSamples)
        })
        .count();
    println!("ablation disturbances=off: non-insufficient removals {transitions}");
    let mut g = c.benchmark_group("ablation_disturbances");
    g.sample_size(10);
    g.bench_function("study_clean_world", |b| b.iter(|| black_box(run_study(&s))));
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default();
    targets = ablation_peering_parity, ablation_forwarding_penalty, ablation_disturbances
}
criterion_main!(benches);
