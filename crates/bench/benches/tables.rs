//! One Criterion bench per paper table: measures regenerating the table
//! from the shared campaign's analyses (the pure analysis stage, which is
//! what a user re-runs when exploring the data).

use criterion::{criterion_group, criterion_main, Criterion};
use ipv6web_analysis::tables::{
    HopTable, Table11, Table13, Table2, Table3, Table4, Table5, Table6, Table8,
};
use ipv6web_analysis::{analyze_vantage, AnalysisConfig};
use ipv6web_bench::shared_quick_study;
use std::hint::black_box;

fn bench_tables(c: &mut Criterion) {
    let study = shared_quick_study();
    let analyses = &study.analyses;
    let day = &study.day_analyses;

    let mut g = c.benchmark_group("tables");
    g.bench_function("table2_profiles", |b| b.iter(|| black_box(Table2::build(analyses))));
    g.bench_function("table3_failure_causes", |b| b.iter(|| black_box(Table3::build(analyses))));
    g.bench_function("table4_classification", |b| b.iter(|| black_box(Table4::build(analyses))));
    g.bench_function("table5_removed_bias", |b| b.iter(|| black_box(Table5::build(analyses))));
    g.bench_function("table6_dl", |b| b.iter(|| black_box(Table6::build(analyses))));
    g.bench_function("table7_dl_dp_hops", |b| b.iter(|| black_box(HopTable::table7(analyses))));
    g.bench_function("table8_sp_h1", |b| b.iter(|| black_box(Table8::build(analyses))));
    g.bench_function("table9_sp_hops", |b| b.iter(|| black_box(HopTable::table9(analyses))));
    g.bench_function("table10_ipv6day_sp", |b| b.iter(|| black_box(Table8::build_ipv6_day(day))));
    g.bench_function("table11_dp_h2", |b| b.iter(|| black_box(Table11::build(analyses))));
    g.bench_function("table12_ipv6day_dp", |b| b.iter(|| black_box(Table11::build_ipv6_day(day))));
    g.bench_function("table13_good_coverage", |b| b.iter(|| black_box(Table13::build(analyses))));
    g.finish();

    // the stage that feeds all tables: a full vantage analysis
    let w = &study.world;
    let penn_idx = w.vantages.iter().position(|v| v.name == "Penn").unwrap();
    c.bench_function("analyze_vantage_penn", |b| {
        b.iter(|| {
            black_box(analyze_vantage(
                &AnalysisConfig::paper(),
                &w.sites,
                &study.dbs[penn_idx],
                &w.tables[penn_idx].0,
                &w.tables[penn_idx].1,
            ))
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_tables
}
criterion_main!(benches);
