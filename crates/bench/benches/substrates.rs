//! Microbenchmarks of the substrates the study is built on: wire codecs,
//! route computation, the TCP model, DNS resolution, topology generation,
//! and a single end-to-end site probe.

use criterion::{criterion_group, criterion_main, Criterion};
use ipv6web_bgp::{routes_to_dest, BgpTable};
use ipv6web_dns::{Resolver, ZoneDb, ZoneEntry};
use ipv6web_netsim::{download_time, DataPlane, TcpConfig};
use ipv6web_packet::{Icmpv6Message, Ipv4Header, Ipv6Header, TcpHeader, UdpHeader};
use ipv6web_stats::derive_rng;
use ipv6web_topology::{generate, AsId, Family, Tier, TopologyConfig};
use std::hint::black_box;
use std::net::{Ipv4Addr, Ipv6Addr};

fn bench_packet(c: &mut Criterion) {
    let mut g = c.benchmark_group("packet");
    let v4 = Ipv4Header::new(Ipv4Addr::new(10, 0, 0, 1), Ipv4Addr::new(10, 0, 0, 2), 6, 1000);
    g.bench_function("ipv4_encode", |b| b.iter(|| black_box(v4.to_vec())));
    let wire4 = v4.to_vec();
    g.bench_function("ipv4_decode", |b| {
        b.iter(|| black_box(Ipv4Header::decode(&mut &wire4[..]).unwrap()))
    });
    let v6 =
        Ipv6Header::new("2001:db8::1".parse().unwrap(), "2001:db8::2".parse().unwrap(), 6, 1000);
    g.bench_function("ipv6_encode", |b| b.iter(|| black_box(v6.to_vec())));
    let s6: Ipv6Addr = "2001:db8::1".parse().unwrap();
    let d6: Ipv6Addr = "2001:db8::2".parse().unwrap();
    let icmp = Icmpv6Message::echo_request(1, 1, vec![0u8; 56]);
    g.bench_function("icmpv6_echo_roundtrip", |b| {
        b.iter(|| {
            let wire = icmp.to_vec(s6, d6);
            black_box(Icmpv6Message::decode(&wire, s6, d6).unwrap())
        })
    });
    let tcp = TcpHeader::syn(49152, 80, 1, 1460);
    let payload = vec![0u8; 512];
    g.bench_function("tcp_segment_roundtrip_v4", |b| {
        b.iter(|| {
            let wire =
                tcp.to_vec_v4(Ipv4Addr::new(1, 1, 1, 1), Ipv4Addr::new(2, 2, 2, 2), &payload);
            let (hdr, _) =
                TcpHeader::decode_v4(&wire, Ipv4Addr::new(1, 1, 1, 1), Ipv4Addr::new(2, 2, 2, 2))
                    .unwrap();
            black_box(hdr)
        })
    });
    let udp = UdpHeader::new(33434, 33435, 8);
    g.bench_function("udp_encode_v6", |b| b.iter(|| black_box(udp.to_vec_v6(s6, d6, &[0u8; 8]))));
    g.finish();
}

fn bench_routing(c: &mut Criterion) {
    let topo = generate(&TopologyConfig::scaled(1000), 5);
    let dest = topo.nodes().iter().find(|n| n.tier == Tier::Content).unwrap().id;
    let vantage = topo.nodes().iter().find(|n| n.tier == Tier::Access).unwrap().id;
    let dests: Vec<AsId> =
        topo.nodes().iter().filter(|n| n.tier == Tier::Content).map(|n| n.id).take(50).collect();
    let mut g = c.benchmark_group("bgp");
    g.bench_function("routes_to_dest_1k_ases", |b| {
        b.iter(|| black_box(routes_to_dest(&topo, dest, Family::V4)))
    });
    g.sample_size(10);
    g.bench_function("table_build_50_dests", |b| {
        b.iter(|| black_box(BgpTable::build(&topo, vantage, Family::V4, &dests)))
    });
    g.finish();

    c.bench_function("topology_generate_1k", |b| {
        b.iter(|| black_box(generate(&TopologyConfig::scaled(1000), 5)))
    });
}

fn bench_dataplane(c: &mut Criterion) {
    let topo = generate(&TopologyConfig::test_small(), 9);
    let vantage =
        topo.nodes().iter().find(|n| n.tier == Tier::Access && n.is_dual_stack()).unwrap().id;
    let dests: Vec<AsId> =
        topo.nodes().iter().filter(|n| n.tier == Tier::Content).map(|n| n.id).take(10).collect();
    let table = BgpTable::build(&topo, vantage, Family::V4, &dests);
    let route = table.iter().next().unwrap();
    let dp = DataPlane::new(&topo);
    c.bench_function("path_metrics", |b| b.iter(|| black_box(dp.metrics(route, Family::V4))));

    let metrics = dp.metrics(route, Family::V4);
    let cfg = TcpConfig::paper();
    let mut rng = derive_rng(1, "bench");
    c.bench_function("tcp_download_60kB", |b| {
        b.iter(|| black_box(download_time(&mut rng, 60_000, &metrics, 20.0, &cfg)))
    });
}

fn bench_dns(c: &mut Criterion) {
    let mut zone = ZoneDb::new();
    for i in 0..1000 {
        zone.insert(
            format!("site{i}.web.example"),
            ZoneEntry {
                v4: Ipv4Addr::new(16, (i / 256) as u8, (i % 256) as u8, 1),
                v6: Some("2400:1::1".parse().unwrap()),
                v6_from_week: 0,
                ttl: 300,
            },
        );
    }
    let mut resolver = Resolver::new();
    let mut i = 0u64;
    c.bench_function("dns_resolve_wire_roundtrip", |b| {
        b.iter(|| {
            // rotate names so the cache doesn't absorb everything
            let name = format!("site{}.web.example", i % 1000);
            i += 1;
            resolver.flush();
            black_box(resolver.resolve(&zone, &name, ipv6web_dns::RecordType::Aaaa, 10, i))
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default();
    targets = bench_packet, bench_routing, bench_dataplane, bench_dns
}
criterion_main!(benches);
