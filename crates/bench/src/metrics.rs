//! `BENCH.json`: the machine-readable performance report and its CI gate.
//!
//! `repro --metrics <path>` writes a [`BenchReport`] *alongside* — never
//! inside — the bit-comparable study report: wall times vary run to run,
//! so they must stay out of anything CI byte-compares. The committed
//! `BENCH_baseline.json` plus [`check_regression`] turn the file into a
//! smoke gate: a quick-scale run that gets more than 50% slower than the
//! baseline fails the build.

use ipv6web_obs::{Snapshot, SpanRecord, Timings};
use serde::{Deserialize, Serialize};

/// Schema tag written into every report, bumped on breaking changes.
pub const BENCH_SCHEMA: &str = "ipv6web-bench/v1";

/// Regression tolerance of the CI gate: the run may be at most this much
/// slower than the baseline (0.5 = +50%).
pub const DEFAULT_TOLERANCE: f64 = 0.5;

/// Ratios derived from the raw counters, precomputed for dashboards.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct DerivedMetrics {
    /// Probe attempts per wall-clock second.
    pub probes_per_sec: f64,
    /// BGP route computations per wall-clock second.
    pub routes_per_sec: f64,
    /// DNS cache hits / (hits + misses); 0 when the cache saw no traffic.
    pub dns_cache_hit_rate: f64,
    /// Epoch-rebuild reuse: routes kept / (kept + recomputed); 0 when the
    /// scenario schedules no route change.
    pub epoch_reuse_rate: f64,
    /// Peak concurrent workers observed anywhere (route fan-out or the
    /// monitor's probe pool).
    pub peak_workers: u64,
}

/// One `BENCH.json`: wall time, per-phase spans, and the full metrics
/// snapshot of a `repro` run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BenchReport {
    /// Schema tag ([`BENCH_SCHEMA`]).
    pub schema: String,
    /// Scale the study ran at (`"quick"` / `"paper"`).
    pub scale: String,
    /// Scenario seed.
    pub seed: u64,
    /// Worker threads the run was configured for (`IPV6WEB_THREADS`).
    pub threads: u64,
    /// End-to-end wall-clock seconds of the study.
    pub wall_s: f64,
    /// Phase breakdown (obs spans, completion order).
    pub phases: Vec<SpanRecord>,
    /// Counters from the obs snapshot.
    pub counters: std::collections::BTreeMap<String, u64>,
    /// Gauges (high-water marks) from the obs snapshot.
    pub gauges: std::collections::BTreeMap<String, u64>,
    /// Derived ratios.
    pub derived: DerivedMetrics,
    /// Histograms from the obs snapshot (sparse buckets).
    pub histograms: std::collections::BTreeMap<String, ipv6web_obs::HistogramSnapshot>,
}

impl BenchReport {
    /// Assembles a report from a finished run's timings and snapshot.
    pub fn assemble(
        scale: &str,
        seed: u64,
        threads: u64,
        wall_s: f64,
        timings: &Timings,
        snap: &Snapshot,
    ) -> BenchReport {
        let per_sec = |n: u64| if wall_s > 0.0 { n as f64 / wall_s } else { 0.0 };
        let rate = |hit: &str, miss: &str| snap.hit_rate(hit, miss).unwrap_or(0.0);
        let derived = DerivedMetrics {
            probes_per_sec: per_sec(snap.counter("monitor.probes")),
            routes_per_sec: per_sec(snap.counter("bgp.routes_computed")),
            dns_cache_hit_rate: rate("dns.cache_hits", "dns.cache_misses"),
            epoch_reuse_rate: rate("bgp.epoch.reused", "bgp.epoch.recomputed"),
            peak_workers: snap.gauge("monitor.peak_workers").max(snap.gauge("par.peak_threads")),
        };
        BenchReport {
            schema: BENCH_SCHEMA.to_string(),
            scale: scale.to_string(),
            seed,
            threads,
            wall_s,
            phases: timings.phases.clone(),
            counters: snap.counters.clone(),
            gauges: snap.gauges.clone(),
            derived,
            histograms: snap.histograms.clone(),
        }
    }

    /// Serializes to pretty JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("bench report serializes")
    }

    /// Parses a report, rejecting unknown schema tags.
    pub fn from_json(s: &str) -> Result<BenchReport, String> {
        let r: BenchReport = serde_json::from_str(s).map_err(|e| format!("{e:?}"))?;
        if r.schema != BENCH_SCHEMA {
            return Err(format!("unsupported bench schema {:?} (want {BENCH_SCHEMA:?})", r.schema));
        }
        Ok(r)
    }
}

/// The gauge both reports must carry for the memory gate to engage.
pub const PEAK_RSS_GAUGE: &str = "process.peak_rss_kb";

/// The CI gate: fails when `current` is more than `tolerance` slower than
/// `baseline` (wall clock), or — when both reports carry the
/// [`PEAK_RSS_GAUGE`] gauge — more than `tolerance` hungrier in peak
/// resident memory. Returns a human-readable verdict either way.
pub fn check_regression(
    current: &BenchReport,
    baseline: &BenchReport,
    tolerance: f64,
) -> Result<String, String> {
    if current.scale != baseline.scale {
        return Err(format!(
            "scale mismatch: run is {:?}, baseline is {:?} — not comparable",
            current.scale, baseline.scale
        ));
    }
    let limit = baseline.wall_s * (1.0 + tolerance);
    let pct = if baseline.wall_s > 0.0 {
        (current.wall_s / baseline.wall_s - 1.0) * 100.0
    } else {
        f64::INFINITY
    };
    if current.wall_s > limit {
        return Err(format!(
            "wall time regression: {:.3}s vs baseline {:.3}s ({pct:+.1}%, limit +{:.0}%)",
            current.wall_s,
            baseline.wall_s,
            tolerance * 100.0
        ));
    }
    let wall_verdict = format!(
        "wall time OK: {:.3}s vs baseline {:.3}s ({pct:+.1}%, limit +{:.0}%)",
        current.wall_s,
        baseline.wall_s,
        tolerance * 100.0
    );
    // memory gate: engaged only when both runs recorded a peak RSS (older
    // baselines predate the gauge and must keep gating on wall time alone)
    let rss = (current.gauges.get(PEAK_RSS_GAUGE), baseline.gauges.get(PEAK_RSS_GAUGE));
    if let (Some(&cur_kb), Some(&base_kb)) = rss {
        if base_kb > 0 {
            let rss_pct = (cur_kb as f64 / base_kb as f64 - 1.0) * 100.0;
            if cur_kb as f64 > base_kb as f64 * (1.0 + tolerance) {
                return Err(format!(
                    "peak RSS regression: {cur_kb} kB vs baseline {base_kb} kB \
                     ({rss_pct:+.1}%, limit +{:.0}%)",
                    tolerance * 100.0
                ));
            }
            return Ok(format!(
                "{wall_verdict}; peak RSS OK: {cur_kb} kB vs baseline {base_kb} kB \
                 ({rss_pct:+.1}%)"
            ));
        }
    }
    Ok(wall_verdict)
}

/// Renders a side-by-side wall-clock and top-level phase comparison of two
/// bench reports — printed by `repro` when the gate fails so the log shows
/// *where* the time went, not just that it regressed.
pub fn render_diff(current: &BenchReport, baseline: &BenchReport) -> String {
    let mut out = String::new();
    let mut row = |name: &str, cur: Option<f64>, base: Option<f64>| {
        let fmt = |v: Option<f64>| v.map_or_else(|| "      —".to_string(), |s| format!("{s:7.3}"));
        let delta = match (cur, base) {
            (Some(c), Some(b)) if b > 0.0 => format!("{:+.1}%", (c / b - 1.0) * 100.0),
            _ => "—".to_string(),
        };
        out.push_str(&format!("{name:<32} {}s {}s  {delta}\n", fmt(cur), fmt(base)));
    };
    row("wall", Some(current.wall_s), Some(baseline.wall_s));
    let top = |r: &BenchReport| -> Vec<(String, f64)> {
        r.phases.iter().filter(|p| p.depth == 0).map(|p| (p.name.clone(), p.seconds)).collect()
    };
    let cur_phases = top(current);
    let base_phases = top(baseline);
    let find =
        |set: &[(String, f64)], name: &str| set.iter().find(|(n, _)| n == name).map(|(_, s)| *s);
    for (name, secs) in &cur_phases {
        row(name, Some(*secs), find(&base_phases, name));
    }
    for (name, secs) in &base_phases {
        if find(&cur_phases, name).is_none() {
            row(name, None, Some(*secs));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(wall_s: f64) -> BenchReport {
        let mut snap = Snapshot::default();
        snap.counters.insert("monitor.probes".into(), 1000);
        snap.counters.insert("bgp.routes_computed".into(), 500);
        snap.counters.insert("dns.cache_hits".into(), 75);
        snap.counters.insert("dns.cache_misses".into(), 25);
        snap.gauges.insert("monitor.peak_workers".into(), 8);
        snap.gauges.insert("par.peak_threads".into(), 4);
        let timings = Timings {
            phases: vec![SpanRecord { name: "world: topology".into(), depth: 0, seconds: 0.1 }],
        };
        BenchReport::assemble("quick", 42, 4, wall_s, &timings, &snap)
    }

    #[test]
    fn derived_metrics_computed() {
        let r = report(10.0);
        assert!((r.derived.probes_per_sec - 100.0).abs() < 1e-9);
        assert!((r.derived.routes_per_sec - 50.0).abs() < 1e-9);
        assert!((r.derived.dns_cache_hit_rate - 0.75).abs() < 1e-9);
        assert_eq!(r.derived.epoch_reuse_rate, 0.0, "no epoch counters → 0");
        assert_eq!(r.derived.peak_workers, 8, "max over both worker gauges");
    }

    #[test]
    fn zero_wall_time_does_not_divide_by_zero() {
        let r = report(0.0);
        assert_eq!(r.derived.probes_per_sec, 0.0);
    }

    #[test]
    fn json_roundtrip() {
        let r = report(2.5);
        let parsed = BenchReport::from_json(&r.to_json()).unwrap();
        assert_eq!(parsed, r);
    }

    #[test]
    fn unknown_schema_rejected() {
        let mut r = report(1.0);
        r.schema = "ipv6web-bench/v999".into();
        assert!(BenchReport::from_json(&r.to_json()).is_err());
    }

    #[test]
    fn gate_passes_within_tolerance() {
        let base = report(10.0);
        assert!(check_regression(&report(14.9), &base, DEFAULT_TOLERANCE).is_ok());
        assert!(check_regression(&report(3.0), &base, DEFAULT_TOLERANCE).is_ok(), "faster is fine");
    }

    #[test]
    fn gate_fails_on_regression() {
        let base = report(10.0);
        let err = check_regression(&report(15.1), &base, DEFAULT_TOLERANCE).unwrap_err();
        assert!(err.contains("regression"), "{err}");
    }

    #[test]
    fn rss_gate_engages_only_when_both_reports_have_the_gauge() {
        let mut base = report(10.0);
        let mut cur = report(10.0);
        // gauge missing on either side → wall-only verdict
        assert!(check_regression(&cur, &base, DEFAULT_TOLERANCE).unwrap().contains("wall time OK"));
        base.gauges.insert(PEAK_RSS_GAUGE.into(), 100_000);
        assert!(!check_regression(&cur, &base, DEFAULT_TOLERANCE).unwrap().contains("RSS"));
        // both present, within tolerance → OK, verdict mentions RSS
        cur.gauges.insert(PEAK_RSS_GAUGE.into(), 120_000);
        let ok = check_regression(&cur, &base, DEFAULT_TOLERANCE).unwrap();
        assert!(ok.contains("peak RSS OK"), "{ok}");
        // blown past tolerance → FAIL
        cur.gauges.insert(PEAK_RSS_GAUGE.into(), 160_000);
        let err = check_regression(&cur, &base, DEFAULT_TOLERANCE).unwrap_err();
        assert!(err.contains("peak RSS regression"), "{err}");
    }

    #[test]
    fn gate_rejects_scale_mismatch() {
        let base = report(10.0);
        let mut cur = report(10.0);
        cur.scale = "paper".into();
        assert!(check_regression(&cur, &base, DEFAULT_TOLERANCE).is_err());
    }

    #[test]
    fn diff_renders_wall_and_phases_side_by_side() {
        let base = report(10.0);
        let mut cur = report(15.0);
        cur.phases.push(SpanRecord { name: "campaign: Penn".into(), depth: 0, seconds: 2.0 });
        cur.phases.push(SpanRecord { name: "detail".into(), depth: 1, seconds: 0.5 });
        let diff = render_diff(&cur, &base);
        assert!(diff.contains("wall"), "{diff}");
        assert!(diff.contains("+50.0%"), "wall delta missing:\n{diff}");
        assert!(diff.contains("world: topology"), "shared phase missing:\n{diff}");
        assert!(diff.contains("campaign: Penn"), "current-only phase missing:\n{diff}");
        assert!(!diff.contains("detail"), "nested spans must stay out of the summary:\n{diff}");
        // a phase only the baseline has still shows up
        let diff_rev = render_diff(&base, &cur);
        assert!(diff_rev.contains("campaign: Penn"), "baseline-only phase missing:\n{diff_rev}");
    }
}
