//! Shared helpers for the benchmark harness and the `repro` binary.

use ipv6web_core::{run_study, Scenario, StudyResult};
use std::sync::OnceLock;

pub mod metrics;
pub mod reference;
pub use metrics::{
    check_regression, render_diff, BenchReport, DerivedMetrics, DEFAULT_TOLERANCE, PEAK_RSS_GAUGE,
};
pub use reference::{render_comparison, shape_checks, ShapeCheck};

/// Scale of a reproduction run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Seconds-scale world; shapes hold, absolute counts are small.
    Quick,
    /// The full paper-scale world (minutes).
    Paper,
    /// The quick world under the demo fault plan: the chaos scenario.
    Faults,
    /// Paper-magnitude world: ~37k ASes, 1M sites, streamed route tables.
    Internet,
    /// Downsized internet tier for CI smoke runs (~5k ASes, 50k sites),
    /// exercising the same streamed/interned pipeline.
    InternetSmoke,
    /// The quick world with the NAT64/DNS64/464XLAT transition plane:
    /// three translator gateways, two v6-only vantage points behind DNS64
    /// and two 464XLAT clients.
    Nat64,
    /// A generated vantage population (200 monitors on a 2k-AS topology)
    /// with the cross-vantage disagreement section.
    Panel,
}

impl Scale {
    /// Parses `quick` / `paper` / `faults` / `internet` /
    /// `internet-smoke` / `nat64` / `panel`.
    pub fn parse(s: &str) -> Option<Scale> {
        match s {
            "quick" => Some(Scale::Quick),
            "paper" => Some(Scale::Paper),
            "faults" => Some(Scale::Faults),
            "internet" => Some(Scale::Internet),
            "internet-smoke" => Some(Scale::InternetSmoke),
            "nat64" => Some(Scale::Nat64),
            "panel" => Some(Scale::Panel),
            _ => None,
        }
    }

    /// The canonical spelling [`Scale::parse`] accepts — also the scale
    /// label stamped into bench metrics.
    pub fn name(self) -> &'static str {
        match self {
            Scale::Quick => "quick",
            Scale::Paper => "paper",
            Scale::Faults => "faults",
            Scale::Internet => "internet",
            Scale::InternetSmoke => "internet-smoke",
            Scale::Nat64 => "nat64",
            Scale::Panel => "panel",
        }
    }

    /// The scenario for this scale.
    pub fn scenario(self, seed: u64) -> Scenario {
        match self {
            Scale::Quick => Scenario::quick(seed),
            Scale::Paper => Scenario::paper(seed),
            Scale::Faults => Scenario::faults(seed),
            Scale::Internet => Scenario::internet(seed),
            Scale::InternetSmoke => Scenario::internet_smoke(seed),
            Scale::Nat64 => Scenario::nat64(seed),
            Scale::Panel => Scenario::panel(seed),
        }
    }
}

/// Runs (or reuses) the quick study for the current process — benches call
/// this so each bench target measures *its* stage, not the shared campaign.
pub fn shared_quick_study() -> &'static StudyResult {
    static STUDY: OnceLock<StudyResult> = OnceLock::new();
    STUDY.get_or_init(|| run_study(&Scenario::quick(42)).expect("quick scenario is valid"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_parses() {
        assert_eq!(Scale::parse("quick"), Some(Scale::Quick));
        assert_eq!(Scale::parse("paper"), Some(Scale::Paper));
        assert_eq!(Scale::parse("faults"), Some(Scale::Faults));
        assert_eq!(Scale::parse("nat64"), Some(Scale::Nat64));
        assert_eq!(Scale::parse("panel"), Some(Scale::Panel));
        assert_eq!(Scale::parse("huge"), None);
    }

    #[test]
    fn panel_scale_carries_a_vantage_population() {
        let s = Scale::Panel.scenario(1);
        assert_eq!(s.vantage_population.as_ref().map(|p| p.count), Some(200));
        assert_eq!(Scale::Panel.name(), "panel");
    }

    #[test]
    fn nat64_scale_activates_the_translation_plane() {
        let s = Scale::Nat64.scenario(1);
        assert!(s.xlat.is_active());
        assert_eq!(Scale::Nat64.name(), "nat64");
    }

    #[test]
    fn scenarios_differ_by_scale() {
        assert!(Scale::Paper.scenario(1).total_sites() > Scale::Quick.scenario(1).total_sites());
    }
}
