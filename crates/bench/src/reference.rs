//! The paper's published numbers, and a side-by-side shape comparison.
//!
//! Values transcribed from the CoNEXT 2011 paper's tables (vantage order:
//! Penn, Comcast, Loughborough U., UPC Broadband — note the paper's
//! column order varies per table; here everything is normalized to that
//! order). `compare` renders measured-vs-paper with a per-check verdict on
//! the *shape* (direction/ordering), which is the reproduction contract.

use ipv6web_core::Report;

/// Paper Table 2, Penn column: (sites total, kept, dest v4, dest v6,
/// crossed v4, crossed v6).
pub const PAPER_TABLE2_PENN: (usize, usize, usize, usize, usize, usize) =
    (12_385, 7_994, 1_047, 727, 1_332, 849);

/// Paper Table 6: `% IPv4 ≥ IPv6` per vantage (Penn, Comcast, LU, UPCB).
pub const PAPER_TABLE6_V4_WINS: [f64; 4] = [96.0, 91.0, 94.0, 90.0];

/// Paper Table 8: `% IPv6 ≈ IPv4` per vantage (Penn, Comcast, LU, UPCB).
pub const PAPER_TABLE8_COMPARABLE: [f64; 4] = [81.3, 80.7, 70.2, 79.8];

/// Paper Table 8: zero-mode share per vantage.
pub const PAPER_TABLE8_ZERO_MODE: [f64; 4] = [9.4, 6.0, 10.8, 7.3];

/// Paper Table 11: `% IPv6 ≈ IPv4` per vantage.
pub const PAPER_TABLE11_COMPARABLE: [f64; 4] = [3.0, 11.0, 10.0, 8.0];

/// Paper Table 13, modal bucket `[50%, 75%)` share per vantage.
pub const PAPER_TABLE13_MODAL: [f64; 4] = [58.8, 45.8, 68.8, 52.6];

/// One shape check's outcome.
#[derive(Debug, Clone, PartialEq)]
pub struct ShapeCheck {
    /// What is being compared.
    pub name: &'static str,
    /// The paper's value(s), rendered.
    pub paper: String,
    /// The measured value(s), rendered.
    pub measured: String,
    /// Whether the reproduction contract (direction/ordering) holds.
    pub ok: bool,
}

fn avg(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}

/// Runs every shape check against a measured report.
pub fn shape_checks(r: &Report) -> Vec<ShapeCheck> {
    let mut out = Vec::new();

    // Fig 1: substantial growth, IPv6-Day step dominant.
    let first = r.fig1.first().map(|p| p.reachable_pct).unwrap_or(0.0);
    let last = r.fig1.last().map(|p| p.reachable_pct).unwrap_or(0.0);
    out.push(ShapeCheck {
        name: "Fig 1: reachability grows with two jumps",
        paper: "0.23% -> 1.2%".into(),
        measured: format!("{first:.2}% -> {last:.2}%"),
        ok: last > first * 1.5,
    });

    // Fig 3a: decline with rank. The Top-10/Top-100 buckets hold 10 and
    // 100 sites — pure binomial noise — so the check compares the first
    // bucket with a statistically meaningful population (Top 1k) against
    // the full list, which is the figure's actual claim.
    let fig3a_top1k = r.fig3a.get(2).map(|x| x.1).unwrap_or(0.0);
    let fig3a_last = r.fig3a.last().map(|x| x.1).unwrap_or(0.0);
    out.push(ShapeCheck {
        name: "Fig 3a: adoption declines with rank",
        paper: "4% (Top 1k) -> 1.2% (Top 1M)".into(),
        measured: format!("{fig3a_top1k:.1}% (Top 1k) -> {fig3a_last:.1}%"),
        ok: fig3a_top1k > fig3a_last,
    });

    // Fig 3b: the two site lists agree.
    out.push(ShapeCheck {
        name: "Fig 3b: ranked list representative of tail",
        paper: "series track each other".into(),
        measured: format!("{:.1}% vs {:.1}%", r.fig3b.0, r.fig3b.1),
        ok: (r.fig3b.0 - r.fig3b.1).abs() < 15.0,
    });

    // Table 2: v4 coverage exceeds v6.
    let t2_ok = (0..r.table2.vantages.len()).all(|i| {
        r.table2.dest_v4[i] >= r.table2.dest_v6[i]
            && r.table2.crossed_v4[i] >= r.table2.crossed_v6[i]
    });
    out.push(ShapeCheck {
        name: "Table 2: IPv4 coverage > IPv6 coverage",
        paper: format!(
            "Penn dest {}/{} crossed {}/{}",
            PAPER_TABLE2_PENN.2, PAPER_TABLE2_PENN.3, PAPER_TABLE2_PENN.4, PAPER_TABLE2_PENN.5
        ),
        measured: format!("dest {:?}/{:?}", r.table2.dest_v4, r.table2.dest_v6),
        ok: t2_ok,
    });

    // Table 3: insufficient-samples dominates.
    let t3_ok = r.table3.counts.iter().all(|c| c[0] >= c[1] + c[2] + c[3] + c[4]);
    out.push(ShapeCheck {
        name: "Table 3: insufficient-samples dominates removals",
        paper: "Penn 2807 vs 180+103+732+569".into(),
        measured: format!("{:?}", r.table3.counts),
        ok: t3_ok,
    });

    // Table 6: IPv4 wins DL.
    out.push(ShapeCheck {
        name: "Table 6: IPv4 >= IPv6 for most DL sites",
        paper: format!("{PAPER_TABLE6_V4_WINS:?}"),
        measured: format!(
            "{:?}",
            r.table6.pct_v4_ge_v6.iter().map(|x| x.round()).collect::<Vec<_>>()
        ),
        ok: r.table6.pct_v4_ge_v6.iter().all(|&x| x >= 75.0),
    });

    // Table 8 vs Table 11: the H2 contrast.
    let sp_avg = avg(&r.table8.pct_comparable) + avg(&r.table8.pct_zero_mode);
    let dp_avg = avg(&r.table11.pct_comparable) + avg(&r.table11.pct_zero_mode);
    out.push(ShapeCheck {
        name: "Table 8 vs 11: SP similar >> DP similar",
        paper: format!(
            "SP ~{:.0}% vs DP ~{:.0}%",
            avg(&PAPER_TABLE8_COMPARABLE) + avg(&PAPER_TABLE8_ZERO_MODE),
            avg(&PAPER_TABLE11_COMPARABLE)
        ),
        measured: format!("SP {sp_avg:.0}% vs DP {dp_avg:.0}%"),
        ok: sp_avg > dp_avg + 20.0,
    });

    // Table 8: cross-checks essentially positive.
    out.push(ShapeCheck {
        name: "Table 8: cross-checks positive",
        paper: "+422 / -0 (summed)".into(),
        measured: format!("+{} / -{}", r.table8.xcheck.0, r.table8.xcheck.1),
        ok: r.table8.xcheck.1 <= (r.table8.xcheck.0 / 5).max(1),
    });

    // Table 9: per-bucket SP parity.
    let mut t9_ok = true;
    for vi in 0..r.table9.vantages.len() {
        for b in 0..5 {
            let (m4, n4) = r.table9.v4[vi][b];
            let (m6, _) = r.table9.v6[vi][b];
            if n4 >= 10 && !(0.75..=1.25).contains(&(m6 / m4)) {
                t9_ok = false;
            }
        }
    }
    out.push(ShapeCheck {
        name: "Table 9: SP per-hop parity",
        paper: "v6 within a few % of v4 per bucket".into(),
        measured: "all populated buckets within 25%".into(),
        ok: t9_ok,
    });

    // Table 13: [50,75) is the modal bucket overall.
    let mut bucket_sums = [0.0f64; 5];
    for v in &r.table13.buckets {
        for (i, x) in v.iter().enumerate() {
            bucket_sums[i] += x;
        }
    }
    let modal = bucket_sums
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.partial_cmp(b.1).expect("no NaN"))
        .map(|(i, _)| i)
        .unwrap_or(0);
    out.push(ShapeCheck {
        name: "Table 13: [50,75) modal good-coverage bucket",
        paper: format!("{PAPER_TABLE13_MODAL:?} in [50,75)"),
        measured: format!("modal bucket index {modal}"),
        ok: modal == 2 || modal == 1,
    });

    // Verdicts.
    out.push(ShapeCheck {
        name: "H1 holds",
        paper: "holds".into(),
        measured: if r.h1.holds { "holds".into() } else { "REJECTED".into() },
        ok: r.h1.holds,
    });
    out.push(ShapeCheck {
        name: "H2 holds",
        paper: "holds".into(),
        measured: if r.h2.holds { "holds".into() } else { "REJECTED".into() },
        ok: r.h2.holds,
    });
    out.push(ShapeCheck {
        name: "Section 5.5: no dominant better-IPv6 trait",
        paper: "no grouping emerged".into(),
        measured: r.better_v6.dominant_trait.clone().unwrap_or_else(|| "none".into()),
        ok: r.better_v6.dominant_trait.is_none(),
    });

    out
}

/// Renders the comparison as a table.
pub fn render_comparison(r: &Report) -> String {
    let checks = shape_checks(r);
    let mut out = String::from("Paper-vs-measured shape comparison\n");
    let wname = checks.iter().map(|c| c.name.len()).max().unwrap_or(10);
    let wpaper = checks.iter().map(|c| c.paper.len()).max().unwrap_or(10);
    for c in &checks {
        out.push_str(&format!(
            "{:<wname$}  {:<wpaper$}  {:<30}  {}\n",
            c.name,
            c.paper,
            c.measured,
            if c.ok { "OK" } else { "DEVIATES" },
        ));
    }
    let ok = checks.iter().filter(|c| c.ok).count();
    out.push_str(&format!("\n{ok}/{} shape checks hold\n", checks.len()));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report() -> &'static Report {
        &crate::shared_quick_study().report
    }

    #[test]
    fn all_shape_checks_hold_on_quick_study() {
        let checks = shape_checks(report());
        let failures: Vec<&ShapeCheck> = checks.iter().filter(|c| !c.ok).collect();
        assert!(failures.is_empty(), "shape deviations: {failures:#?}");
    }

    #[test]
    fn render_mentions_every_check() {
        let text = render_comparison(report());
        assert!(text.contains("H1 holds"));
        assert!(text.contains("Table 8 vs 11"));
        assert!(text.contains("shape checks hold"));
    }
}
