//! `repro` — regenerate every table and figure of the paper.
//!
//! ```sh
//! repro all                      # everything, quick scale
//! repro tab8 fig1                # specific artifacts
//! repro all --scale paper        # full-scale run (minutes)
//! repro all --scale faults       # quick scale under the demo fault plan
//! repro all --scale nat64        # quick scale with NAT64/DNS64/464XLAT vantages
//! repro all --scale panel        # 200 generated vantage points, disagreement section
//! repro all --seed 7 --json out.json
//! repro all --fault-plan plan.json --checkpoint-dir ckpt/
//! repro all --metrics BENCH.json --baseline BENCH_baseline.json
//! repro all --sequential           # reference pipeline, for byte-comparison
//! repro sweep sweep.json --store out/ --procs 4   # supervised study sweep
//! ```

use ipv6web_bench::{check_regression, render_diff, BenchReport, Scale, DEFAULT_TOLERANCE};
use ipv6web_core::{run_study_mode, ExecutionMode};
use ipv6web_faults::FaultPlan;

const ARTIFACTS: &[&str] = &[
    "fig1", "fig3a", "fig3b", "tab1", "tab2", "tab3", "tab4", "tab5", "tab6", "tab7", "tab8",
    "tab9", "tab10", "tab11", "tab12", "tab13", "verdicts", "compare",
];

fn usage() -> ! {
    eprintln!(
        "usage: repro <artifact...|all> [--scale quick|paper|faults|internet|internet-smoke|nat64|panel]\n\
         \x20            [--seed N] [--json FILE]\n\
         \x20            [--csv DIR] [--fault-plan FILE] [--checkpoint-dir DIR]\n\
         \x20            [--metrics FILE] [--baseline FILE] [--sequential]\n\
         \x20      repro sweep <sweep.json> --store DIR [--procs N] [--metrics FILE]\n\
         artifacts: {}",
        ARTIFACTS.join(" ")
    );
    std::process::exit(2)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        usage();
    }
    // `repro sweep …` hands the rest of the line to the sweep CLI before
    // any artifact parsing. The `["sweep"]` prefix makes worker
    // self-invocations (`current_exe()`) route back through this arm.
    if args[0] == "sweep" {
        std::process::exit(ipv6web_sweep::cli::cli_main(&args[1..], &["sweep"]));
    }
    let mut wanted: Vec<String> = Vec::new();
    let mut scale = Scale::Quick;
    let mut seed = 42u64;
    let mut json_out: Option<String> = None;
    let mut csv_dir: Option<String> = None;
    let mut metrics_out: Option<String> = None;
    let mut baseline_path: Option<String> = None;
    let mut fault_plan_path: Option<String> = None;
    let mut checkpoint_dir: Option<String> = None;
    let mut mode = ExecutionMode::default();
    let mut it = args.into_iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--scale" => {
                let v = it.next().unwrap_or_else(|| usage());
                scale = Scale::parse(&v).unwrap_or_else(|| {
                    eprintln!(
                        "repro: unknown scale `{v}` \
                         (expected quick, paper, faults, internet, internet-smoke, nat64, or panel)"
                    );
                    usage()
                });
            }
            "--seed" => {
                let v = it.next().unwrap_or_else(|| usage());
                seed = v.parse().unwrap_or_else(|_| usage());
            }
            "--json" => {
                json_out = Some(it.next().unwrap_or_else(|| usage()));
            }
            "--csv" => {
                csv_dir = Some(it.next().unwrap_or_else(|| usage()));
            }
            "--metrics" => {
                metrics_out = Some(it.next().unwrap_or_else(|| usage()));
            }
            "--baseline" => {
                baseline_path = Some(it.next().unwrap_or_else(|| usage()));
            }
            "--fault-plan" => {
                fault_plan_path = Some(it.next().unwrap_or_else(|| usage()));
            }
            "--checkpoint-dir" => {
                checkpoint_dir = Some(it.next().unwrap_or_else(|| usage()));
            }
            "--sequential" => {
                mode = ExecutionMode::Sequential;
            }
            "all" => wanted.extend(ARTIFACTS.iter().map(|s| s.to_string())),
            other if ARTIFACTS.contains(&other) => wanted.push(other.to_string()),
            _ => usage(),
        }
    }
    if wanted.is_empty() {
        usage();
    }
    wanted.dedup();

    if metrics_out.is_some() {
        ipv6web_obs::reset();
        ipv6web_obs::enable();
    }
    let mut scenario = scale.scenario(seed);
    if let Some(path) = &fault_plan_path {
        let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
            eprintln!("repro: cannot read fault plan {path}: {e}");
            std::process::exit(2);
        });
        scenario.faults = serde_json::from_str::<FaultPlan>(&text).unwrap_or_else(|e| {
            eprintln!("repro: cannot parse fault plan {path}: {e}");
            std::process::exit(2);
        });
    }
    if checkpoint_dir.is_some() {
        scenario.checkpoint_dir = checkpoint_dir;
    }
    // A typo'd --checkpoint-dir used to surface only at the first
    // checkpoint write, after minutes of campaign work. Validate before
    // doing anything expensive and fail with the usual exit code 2.
    if let Some(dir) = &scenario.checkpoint_dir {
        if let Err(e) = ipv6web_monitor::validate_checkpoint_dir(std::path::Path::new(dir)) {
            eprintln!("repro: {e}");
            std::process::exit(2);
        }
    }
    eprintln!("running study (scale {scale:?}, seed {seed}, {mode:?})...");
    let t0 = std::time::Instant::now();
    let study = run_study_mode(&scenario, mode).unwrap_or_else(|e| {
        eprintln!("repro: {e}");
        std::process::exit(2);
    });
    let wall_s = t0.elapsed().as_secs_f64();
    eprintln!("study complete in {wall_s:.1}s\n");
    eprint!("{}", study.timings.render());
    eprintln!();
    let r = &study.report;

    for artifact in &wanted {
        let text = match artifact.as_str() {
            "fig1" => r.render_fig1(),
            "fig3a" => r.render_fig3a(),
            "fig3b" => r.render_fig3b(),
            "tab1" => r.render_table1(),
            "tab2" => r.table2.to_string(),
            "tab3" => r.table3.to_string(),
            "tab4" => r.table4.to_string(),
            "tab5" => r.table5.to_string(),
            "tab6" => r.table6.to_string(),
            "tab7" => r.table7.to_string(),
            "tab8" => r.table8.to_string(),
            "tab9" => r.table9.to_string(),
            "tab10" => r.table10.to_string(),
            "tab11" => r.table11.to_string(),
            "tab12" => r.table12.to_string(),
            "tab13" => r.table13.to_string(),
            "verdicts" => {
                let mut t = format!("{}\n{}\n{}", r.better_v6, r.h1.summary, r.h2.summary);
                // scenarios without a translation plane keep the exact
                // historical bytes; nat64 runs get the per-stack tables
                if r.xlat.is_some() {
                    t.push('\n');
                    t.push_str(&r.render_xlat());
                }
                if r.panel.is_some() {
                    t.push('\n');
                    t.push_str(&r.render_panel());
                }
                t
            }
            "compare" => ipv6web_bench::render_comparison(r),
            _ => unreachable!("filtered above"),
        };
        println!("{text}");
    }

    if let Some(dir) = csv_dir {
        use ipv6web_analysis::export;
        let dir = std::path::PathBuf::from(dir);
        std::fs::create_dir_all(&dir).expect("create csv dir");
        let files = [
            ("fig1.csv", export::fig1_csv(&r.fig1)),
            ("fig3a.csv", export::fig3a_csv(&r.fig3a)),
            ("table7.csv", export::hop_table_csv(&r.table7)),
            ("table8.csv", export::table8_csv(&r.table8)),
            ("table9.csv", export::hop_table_csv(&r.table9)),
            ("table10.csv", export::table8_csv(&r.table10)),
            ("table11.csv", export::table11_csv(&r.table11)),
            ("table12.csv", export::table11_csv(&r.table12)),
            ("kept_sites.csv", export::kept_sites_csv(&study.analyses)),
        ];
        for (name, content) in files {
            std::fs::write(dir.join(name), content).expect("write csv");
        }
        eprintln!("wrote CSVs to {}", dir.display());
    }

    if let Some(path) = json_out {
        // The report itself stays bit-comparable across runs. Without
        // --metrics, timings ride along under a separate top-level key (the
        // historical behavior); with --metrics they move to BENCH.json and
        // the report file is written pure, so CI can byte-compare it across
        // thread counts and runs.
        let mut value = serde_json::to_value(r).expect("report serializes");
        if metrics_out.is_none() {
            if let serde_json::Value::Obj(fields) = &mut value {
                let timings = serde_json::to_value(&study.timings).expect("timings serialize");
                fields.push(("timings".to_string(), timings));
            }
        }
        let json = serde_json::to_string_pretty(&value).expect("report serializes");
        std::fs::write(&path, json).expect("write json report");
        eprintln!("wrote JSON report to {path}");
    }

    if let Some(path) = metrics_out {
        ipv6web_obs::record_peak_rss();
        ipv6web_obs::flush_thread();
        let snap = ipv6web_obs::snapshot();
        let bench = BenchReport::assemble(
            scale.name(),
            seed,
            ipv6web_par::thread_count() as u64,
            wall_s,
            &study.timings,
            &snap,
        );
        std::fs::write(&path, bench.to_json()).expect("write bench metrics");
        eprintln!("wrote bench metrics to {path}");

        if let Some(base_path) = baseline_path {
            let base_json = std::fs::read_to_string(&base_path)
                .unwrap_or_else(|e| panic!("read baseline {base_path}: {e}"));
            let base = BenchReport::from_json(&base_json)
                .unwrap_or_else(|e| panic!("parse baseline {base_path}: {e}"));
            match check_regression(&bench, &base, DEFAULT_TOLERANCE) {
                Ok(verdict) => eprintln!("bench gate: {verdict}"),
                Err(verdict) => {
                    eprintln!("bench gate: FAIL — {verdict}");
                    eprint!("{}", render_diff(&bench, &base));
                    std::process::exit(1);
                }
            }
        }
    }
}
